// climate_checkpoint — the paper's motivating workflow (Sec. I): a climate
// simulation (CESM-like) periodically dumps its state. The example lets the
// compression advisor pick a codec under a PSNR floor, then checkpoints the
// field through HDF5 to the Lustre-class PFS, restarts from it, and reports
// the full time/energy ledger against uncompressed checkpoints.
//
//   ./examples/climate_checkpoint [--psnr=70] [--steps=4] [--io=HDF5]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/format.h"
#include "common/table.h"
#include "compressors/compressor.h"
#include "core/decision.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "io/io_tool.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double psnr_floor = args.get_double("psnr", 70.0);
  const int steps = args.get_int("steps", 4);
  const std::string io_name = args.get("io", "HDF5");

  // The simulation state: one CESM-like atmosphere variable per step.
  std::printf("climate checkpointing demo: %d dumps, PSNR floor %.0f dB, %s\n",
              steps, psnr_floor, io_name.c_str());
  const Field first = generate_dataset_dims("CESM", {26, 96, 192}, 1);

  // Let the advisor choose codec + bound on the first dump.
  AdvisorConstraints cons;
  cons.psnr_min_db = psnr_floor;
  cons.objective = Objective::kBalanced;
  const AdvisorReport advice = advise_compression(first, cons);
  if (advice.recommendation.codec.empty()) {
    std::printf("no codec meets the PSNR floor — writing uncompressed.\n");
    return 0;
  }
  const std::string codec = advice.recommendation.codec;
  const double eb = advice.recommendation.error_bound;
  std::printf("advisor picked %s @ eb=%s (sample: ratio %.1fx, PSNR %.1f dB)\n\n",
              codec.c_str(), fmt_error_bound(eb).c_str(),
              advice.recommendation.ratio, advice.recommendation.psnr_db);

  PfsSimulator pfs;
  double total_comp_j = 0, total_write_j = 0, total_orig_j = 0;
  TextTable t({"step", "ratio", "PSNR (dB)", "compress (J)",
               "write comp (J)", "write orig (J)", "verdict"});
  for (int step = 0; step < steps; ++step) {
    Field state = generate_dataset_dims("CESM", {26, 96, 192},
                                        static_cast<std::uint64_t>(step + 1));
    state.set_name("CESM.step" + std::to_string(step));

    PipelineConfig cfg;
    cfg.codec = codec;
    cfg.error_bound = eb;
    cfg.io_library = io_name;
    cfg.psnr_min_db = psnr_floor;
    const WriteRecord rec = run_compress_write(state, cfg, pfs);

    total_comp_j += rec.compression.compress_j;
    total_write_j += rec.write_compressed_j;
    total_orig_j += rec.write_original_j;
    t.add_row({std::to_string(step), fmt_double(rec.compression.ratio, 1),
               fmt_double(rec.compression.quality.psnr_db, 1),
               fmt_double(rec.compression.compress_j, 3),
               fmt_double(rec.write_compressed_j, 3),
               fmt_double(rec.write_original_j, 3),
               rec.verdict.beneficial() ? "compress" : "don't"});

    // Restart check: read the checkpoint back and verify the bound.
    IoTool& tool = io_tool(io_name);
    const Bytes blob =
        tool.read_blob(pfs, "/pfs/" + state.name() + ".eblc." + tool.name(),
                       state.name());
    const Field restored = decompress_any(blob);
    if (!check_value_range_bound(state, restored, eb)) {
      std::printf("restart verification FAILED at step %d\n", step);
      return 1;
    }
  }
  t.print(std::cout);

  std::printf(
      "\n%d checkpoints: compression %.2f J + compressed writes %.2f J vs\n"
      "uncompressed writes %.2f J  =>  I/O energy saved: %.1fx, end-to-end\n"
      "%s. All restarts verified within the bound.\n",
      steps, total_comp_j, total_write_j, total_orig_j,
      total_orig_j / std::max(total_write_j, 1e-12),
      total_comp_j + total_write_j < total_orig_j
          ? "compression wins (Eq. 4 satisfied)"
          : "compression costs more than it saves at this scale");
  return 0;
}
