// climate_checkpoint — the paper's motivating workflow (Sec. I): a climate
// simulation (CESM-like) periodically dumps its state. The example lets the
// compression advisor pick a codec under a PSNR floor, then checkpoints the
// field through the chosen container's chunked-dataset API on the streamed
// compress→write pipeline (slab i compresses while the container writes
// slab i-1), restarts from it through the symmetric streamed fetch→
// decompress pipeline, verifies the bound, and reports the full time/energy
// ledger against uncompressed checkpoints.
//
//   ./examples/climate_checkpoint [--psnr=70] [--steps=4] [--io=HDF5]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/format.h"
#include "common/table.h"
#include "compressors/compressor.h"
#include "core/decision.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "energy/powercap_monitor.h"
#include "io/io_tool.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double psnr_floor = args.get_double("psnr", 70.0);
  const int steps = args.get_int("steps", 4);
  const std::string io_name = args.get("io", "HDF5");

  // The simulation state: one CESM-like atmosphere variable per step.
  std::printf("climate checkpointing demo: %d dumps, PSNR floor %.0f dB, %s\n",
              steps, psnr_floor, io_name.c_str());
  const Field first = generate_dataset_dims("CESM", {26, 96, 192}, 1);

  // Let the advisor choose codec + bound on the first dump.
  AdvisorConstraints cons;
  cons.psnr_min_db = psnr_floor;
  cons.objective = Objective::kBalanced;
  const AdvisorReport advice = advise_compression(first, cons);
  if (advice.recommendation.codec.empty()) {
    std::printf("no codec meets the PSNR floor — writing uncompressed.\n");
    return 0;
  }
  const std::string codec = advice.recommendation.codec;
  const double eb = advice.recommendation.error_bound;
  std::printf("advisor picked %s @ eb=%s (sample: ratio %.1fx, PSNR %.1f dB)\n\n",
              codec.c_str(), fmt_error_bound(eb).c_str(),
              advice.recommendation.ratio, advice.recommendation.psnr_db);

  PfsSimulator pfs;
  IoTool& tool = io_tool(io_name);
  double total_comp_j = 0, total_write_j = 0, total_orig_j = 0;
  double dump_saved_s = 0, restart_saved_s = 0;
  TextTable t({"step", "ratio", "PSNR (dB)", "compress (J)",
               "write comp (J)", "write orig (J)", "dump strm (s)",
               "restart strm (s)"});
  for (int step = 0; step < steps; ++step) {
    Field state = generate_dataset_dims("CESM", {26, 96, 192},
                                        static_cast<std::uint64_t>(step + 1));
    state.set_name("CESM.step" + std::to_string(step));

    PipelineConfig cfg;
    cfg.codec = codec;
    cfg.error_bound = eb;
    cfg.io_library = io_name;
    cfg.psnr_min_db = psnr_floor;

    // Streamed dump: each compressed slab lands as one chunk in the real
    // container while the next slab is still compressing.
    const StreamWriteRecord dump =
        run_streamed_compress_write(state, cfg, pfs);
    // Uncompressed baseline checkpoint for the ledger.
    const IoCost orig =
        tool.write_field(pfs, dump.path + ".orig", state);
    const CpuModel& cpu = cpu_model(cfg.cpu);
    PowercapMonitor mon(cpu);
    const double orig_j =
        mon.record_compute("orig-prep", orig.prep_seconds, 1).joules +
        mon.record_io("orig-write", orig.transfer_seconds).joules;

    // Streamed restart: fetch of slab i overlaps decompression of i-1.
    const StreamReadRecord restart = run_streamed_read(pfs, dump.path, cfg);
    const auto quality = compute_error_stats(state, restart.field);
    if (!check_value_range_bound(state, restart.field, eb)) {
      std::printf("restart verification FAILED at step %d\n", step);
      return 1;
    }

    total_comp_j += dump.compress_j;
    total_write_j += dump.write_j;
    total_orig_j += orig_j;
    dump_saved_s += dump.overlap_saving_s();
    restart_saved_s += restart.overlap_saving_s();
    t.add_row({std::to_string(step), fmt_double(dump.ratio(), 1),
               fmt_double(quality.psnr_db, 1),
               fmt_double(dump.compress_j, 3),
               fmt_double(dump.write_j, 3), fmt_double(orig_j, 3),
               fmt_double(dump.streamed_total_s, 4),
               fmt_double(restart.streamed_total_s, 4)});
  }
  t.print(std::cout);

  std::printf(
      "\n%d streamed checkpoints through %s: compression %.2f J +\n"
      "compressed writes %.2f J vs uncompressed writes %.2f J  =>  I/O\n"
      "energy saved: %.1fx, end-to-end %s.\n"
      "Pipeline overlap saved %.4f s across dumps and %.4f s across\n"
      "restarts vs the serial schedules. All restarts verified within the\n"
      "bound.\n",
      steps, tool.name().c_str(), total_comp_j, total_write_j, total_orig_j,
      total_orig_j / std::max(total_write_j, 1e-12),
      total_comp_j + total_write_j < total_orig_j
          ? "compression wins (Eq. 4 satisfied)"
          : "compression costs more than it saves at this scale",
      dump_saved_s, restart_saved_s);
  return 0;
}
