// capacity_planner — the paper's Sec. VII extrapolation as a tool: given a
// yearly data volume and a compressor working point, estimate storage
// device counts, device-side write energy, and the embodied-carbon
// reduction of the storage racks (SSD: 80% of rack emissions are device-
// embodied; HDD: 41% — McAllister et al., HotCarbon'24).
//
//   ./examples/capacity_planner [--pb-per-year=10] [--dataset=NYX]
//                               [--codec=SZ3] [--eb=1e-3]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/format.h"
#include "common/table.h"
#include "compressors/compressor.h"
#include "data/dataset.h"
#include "io/storage_energy.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double pb_per_year = args.get_double("pb-per-year", 10.0);
  const std::string dataset = args.get("dataset", "NYX");
  const std::string codec = args.get("codec", "SZ3");
  const double eb = args.get_double("eb", 1e-3);

  // Measure the achievable ratio on a representative sample of the
  // facility's dominant data set.
  const Field sample = generate_dataset_dims(
      dataset, scaled_dims(dataset_spec(dataset),
                           1.0 / dataset_spec(dataset).default_shrink),
      3);
  CompressOptions opt;
  opt.error_bound = eb;
  const Bytes blob = compressor(codec).compress(sample, opt);
  const double ratio = compression_ratio(sample.size_bytes(), blob.size());
  const auto st =
      compute_error_stats(sample, compressor(codec).decompress(blob, 1));

  const double bytes_year = pb_per_year * 1e15;
  std::printf(
      "capacity plan: %.1f PB/year of %s-like data, %s @ eb=%s\n"
      "measured ratio %.1fx at PSNR %.1f dB\n\n",
      pb_per_year, dataset.c_str(), codec.c_str(),
      fmt_error_bound(eb).c_str(), ratio, st.psnr_db);

  TextTable t({"medium", "scenario", "devices", "write energy (MJ)",
               "embodied tCO2e"});
  for (const StorageDeviceModel* model : {&ssd_model(), &hdd_model()}) {
    const StorageFootprint raw = storage_footprint(*model, bytes_year);
    const StorageFootprint comp =
        storage_footprint(*model, bytes_year / ratio);
    t.add_row({model->kind, "uncompressed", fmt_double(raw.devices, 0),
               fmt_double(raw.write_joules / 1e6, 1),
               fmt_double(raw.embodied_kgco2 / 1e3, 1)});
    t.add_row({model->kind, "EBLC " + fmt_double(ratio, 0) + "x",
               fmt_double(comp.devices, 0),
               fmt_double(comp.write_joules / 1e6, 1),
               fmt_double(comp.embodied_kgco2 / 1e3, 1)});
  }
  t.print(std::cout);

  std::printf(
      "\nrack-level embodied-emission reduction at %.0fx capacity shrink:\n"
      "  SSD racks: %.0f%%   HDD racks: %.0f%%\n"
      "(paper Sec. VII: ~70-75%% for two-orders-of-magnitude reduction,\n"
      "depending on the SSD/HDD mix)\n",
      ratio, 100.0 * rack_embodied_reduction(ssd_model(), ratio),
      100.0 * rack_embodied_reduction(hdd_model(), ratio));
  return 0;
}
