// capacity_planner — the paper's Sec. VII extrapolation as a tool: given a
// yearly data volume and a compressor working point, estimate storage
// device counts, device-side write energy, and the embodied-carbon
// reduction of the storage racks (SSD: 80% of rack emissions are device-
// embodied; HDD: 41% — McAllister et al., HotCarbon'24).
//
// Before measuring anything, the planner pre-screens the full codec×bound
// grid through the gray-box ratio estimator (core/estimator, the paper's
// ref. [51] role): the grid runs as a parallel sweep on the shared
// executor and streams its rows as cells complete, in deterministic
// order. The measured working point then validates the chosen cell.
//
//   ./examples/capacity_planner [--pb-per-year=10] [--dataset=NYX]
//                               [--codec=SZ3] [--eb=1e-3]
//                               [--parallel-sweep=1]
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/format.h"
#include "common/table.h"
#include "compressors/compressor.h"
#include "core/estimator.h"
#include "data/dataset.h"
#include "io/storage_energy.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double pb_per_year = args.get_double("pb-per-year", 10.0);
  const std::string dataset = args.get("dataset", "NYX");
  const std::string codec = args.get("codec", "SZ3");
  const double eb = args.get_double("eb", 1e-3);
  const bool parallel = args.get_bool("parallel-sweep", true);

  const Field sample = generate_dataset_dims(
      dataset, scaled_dims(dataset_spec(dataset),
                           1.0 / dataset_spec(dataset).default_shrink),
      3);

  // Gray-box pre-screen: predicted ratio for every (codec, bound) cell,
  // streamed as the sweep completes cells — no compression runs yet.
  const std::vector<std::string> screen_codecs = {"SZ2", "SZ3", "ZFP", "QoZ",
                                                  "SZx"};
  const std::vector<double> screen_bounds = {1e-2, 1e-3, 1e-4, 1e-5};
  std::printf("pre-screen (%zu cells, estimator only, %s sweep):\n",
              screen_codecs.size() * screen_bounds.size(),
              parallel ? "parallel" : "serial");
  SweepOptions sweep;
  sweep.parallel = parallel;
  const auto screen = estimate_ratio_grid(
      sample, screen_codecs, screen_bounds, 262144, sweep,
      [](const RatioGridEntry& e, std::size_t done, std::size_t total) {
        if (e.ok)
          std::printf("  [%2zu/%zu] %-4s @ %-6s -> predicted %6.1fx "
                      "(%.2f bits/value)\n",
                      done, total, e.codec.c_str(),
                      fmt_error_bound(e.eb_rel).c_str(),
                      e.estimate.predicted_ratio, e.estimate.bits_per_value);
        else
          std::printf("  [%2zu/%zu] %-4s @ %-6s -> %s\n", done, total,
                      e.codec.c_str(), fmt_error_bound(e.eb_rel).c_str(),
                      e.error.c_str());
        std::fflush(stdout);
      });

  // Measure the achievable ratio at the requested working point on the
  // representative sample of the facility's dominant data set.
  CompressOptions opt;
  opt.error_bound = eb;
  const Bytes blob = compressor(codec).compress(sample, opt);
  const double ratio = compression_ratio(sample.size_bytes(), blob.size());
  const auto st =
      compute_error_stats(sample, compressor(codec).decompress(blob, 1));
  // Working-point prediction: reuse the screened grid when the point is on
  // it (the defaults are); only off-grid points re-run the estimator.
  double predicted = 0.0;
  for (const RatioGridEntry& e : screen)
    if (e.ok && e.codec == codec && e.eb_rel == eb)
      predicted = e.estimate.predicted_ratio;
  if (predicted == 0.0)
    predicted = estimate_ratio(sample, codec, eb).predicted_ratio;

  const double bytes_year = pb_per_year * 1e15;
  std::printf(
      "\ncapacity plan: %.1f PB/year of %s-like data, %s @ eb=%s\n"
      "measured ratio %.1fx at PSNR %.1f dB (pre-screen predicted %.1fx)\n\n",
      pb_per_year, dataset.c_str(), codec.c_str(),
      fmt_error_bound(eb).c_str(), ratio, st.psnr_db, predicted);

  TextTable t({"medium", "scenario", "devices", "write energy (MJ)",
               "embodied tCO2e"});
  for (const StorageDeviceModel* model : {&ssd_model(), &hdd_model()}) {
    const StorageFootprint raw = storage_footprint(*model, bytes_year);
    const StorageFootprint comp =
        storage_footprint(*model, bytes_year / ratio);
    t.add_row({model->kind, "uncompressed", fmt_double(raw.devices, 0),
               fmt_double(raw.write_joules / 1e6, 1),
               fmt_double(raw.embodied_kgco2 / 1e3, 1)});
    t.add_row({model->kind, "EBLC " + fmt_double(ratio, 0) + "x",
               fmt_double(comp.devices, 0),
               fmt_double(comp.write_joules / 1e6, 1),
               fmt_double(comp.embodied_kgco2 / 1e3, 1)});
  }
  t.print(std::cout);

  std::printf(
      "\nrack-level embodied-emission reduction at %.0fx capacity shrink:\n"
      "  SSD racks: %.0f%%   HDD racks: %.0f%%\n"
      "(paper Sec. VII: ~70-75%% for two-orders-of-magnitude reduction,\n"
      "depending on the SSD/HDD mix)\n",
      ratio, 100.0 * rack_embodied_reduction(ssd_model(), ratio),
      100.0 * rack_embodied_reduction(hdd_model(), ratio));
  return 0;
}
