// compressor_tuner — interactive use of the compression advisor (the
// paper's Sec. VII "actionable takeaways" as an API): trial the EBLC suite
// on a sample of your data set under a quality floor and rank the
// candidates for each optimization objective.
//
// The codec×bound trials execute as a grid sweep on the shared executor
// (core/sweep.h); completed trials stream as progress lines in
// deterministic domain order while the grid is still running.
//
//   ./examples/compressor_tuner [--dataset=NYX] [--psnr=60]
//                               [--parallel-sweep=1] [--reps=1]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/format.h"
#include "common/table.h"
#include "core/decision.h"
#include "data/dataset.h"

using namespace eblcio;

namespace {

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kMinEnergy: return "minimize energy";
    case Objective::kMaxRatio: return "maximize ratio";
    case Objective::kBalanced: return "ratio per joule";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string dataset = args.get("dataset", "NYX");
  const double psnr_floor = args.get_double("psnr", 60.0);
  const bool parallel = args.get_bool("parallel-sweep", true);
  const int reps = args.get_int("reps", 1);

  const DatasetSpec& spec = dataset_spec(dataset);
  const Field field = generate_dataset_dims(
      dataset, scaled_dims(spec, 1.0 / spec.default_shrink), 11);
  std::printf("tuning for %s (%s, %s), PSNR floor %.0f dB\n\n",
              spec.name.c_str(), fmt_dims(field.shape().dims_vector()).c_str(),
              human_bytes(field.size_bytes()).c_str(), psnr_floor);

  for (Objective obj : {Objective::kMinEnergy, Objective::kMaxRatio,
                        Objective::kBalanced}) {
    AdvisorConstraints cons;
    cons.psnr_min_db = psnr_floor;
    cons.objective = obj;
    cons.parallel = parallel;
    if (reps > 1) cons.repeat = repeat_protocol(reps);
    std::printf("--- objective: %s (%s sweep) ---\n", objective_name(obj),
                parallel ? "parallel" : "serial");
    const AdvisorReport report = advise_compression(
        field, cons,
        [](const AdvisorCandidate& c, std::size_t done, std::size_t total) {
          std::printf("  [%2zu/%zu] %-4s @ %-6s ratio %6.1fx  PSNR %6.1f dB\n",
                      done, total, c.codec.c_str(),
                      fmt_error_bound(c.error_bound).c_str(), c.ratio,
                      c.psnr_db);
          std::fflush(stdout);
        });

    TextTable t({"rank", "codec", "bound", "ratio", "PSNR (dB)",
                 "sample energy (J)", "feasible"});
    int rank = 1;
    for (const AdvisorCandidate& c : report.candidates) {
      if (rank > 6) break;  // top six
      t.add_row({std::to_string(rank++), c.codec,
                 fmt_error_bound(c.error_bound), fmt_double(c.ratio, 1),
                 fmt_double(c.psnr_db, 1), fmt_double(c.compress_j, 4),
                 c.feasible ? "yes" : "no"});
    }
    t.print(std::cout);
    if (!report.recommendation.codec.empty()) {
      std::printf("recommendation: %s @ %s\n\n",
                  report.recommendation.codec.c_str(),
                  fmt_error_bound(report.recommendation.error_bound).c_str());
    } else {
      std::printf("recommendation: none feasible under the floor\n\n");
    }
  }
  return 0;
}
