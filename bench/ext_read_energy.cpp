// Extension — the read path. Sec. VI-A notes the benefit is "doubly
// effective, as pulling compressed data out of storage for analysis will
// have the same benefits of reduced I/O time." This bench quantifies it:
// energy to read back + decompress each data set versus reading the
// uncompressed original, per codec at REL 1e-3 (HDF5, MAX 9480).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"
#include "io/io_tool.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Extension", "Read-back + decompress energy vs uncompressed read",
      env);

  const CpuModel& cpu = cpu_model("9480");
  IoTool& tool = io_tool("HDF5");

  TextTable t({"Dataset", "Codec", "read comp (J)", "decomp (J)",
               "total (J)", "read orig (J)", "reduction"});
  for (const std::string& dataset : bench::paper_datasets()) {
    const Field& f = bench::bench_dataset(dataset, env);
    PfsSimulator pfs;
    tool.write_field(pfs, "/r/orig", f);
    const auto orig_read = pfs.read_cost("/r/orig", 1);
    PowercapMonitor orig_mon(cpu);
    const double orig_j =
        orig_mon.record_io("read", orig_read.seconds).joules;

    for (const std::string& codec : eblc_names()) {
      CompressOptions opt;
      opt.error_bound = eb;
      if (!compressor(codec).supports(f, opt)) continue;
      const Bytes blob = compressor(codec).compress(f, opt);
      tool.write_blob(pfs, "/r/" + codec, dataset, blob);
      const auto read = pfs.read_cost("/r/" + codec, 1);

      PipelineConfig cfg;
      cfg.codec = codec;
      cfg.error_bound = eb;
      cfg.cpu = cpu.name;
      const auto rec = bench::measure_compression(f, cfg, env);

      PowercapMonitor mon(cpu);
      const double read_j = mon.record_io("read", read.seconds).joules;
      const double total = read_j + rec.decompress_j;
      t.add_row({dataset, codec, fmt_double(read_j, 3),
                 fmt_double(rec.decompress_j, 3), fmt_double(total, 3),
                 fmt_double(orig_j, 3), fmt_double(orig_j / total, 2) + "x"});
    }
    t.add_rule();
  }
  t.print(std::cout);

  std::printf(
      "\nReading: the raw read-I/O energy shrinks by the compression\n"
      "ratio, but unlike the write path the *decompression* energy must be\n"
      "paid before analysis — so end-to-end read reductions only win when\n"
      "the data is large or the codec decodes cheaply (SZx, ZFP).\n");
  return 0;
}
