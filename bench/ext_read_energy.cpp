// Extension — the read path. Sec. VI-A notes the benefit is "doubly
// effective, as pulling compressed data out of storage for analysis will
// have the same benefits of reduced I/O time." This bench quantifies it:
// energy to read back + decompress each data set versus reading the
// uncompressed original, per codec at REL 1e-3 (HDF5, MAX 9480) — and, new
// with the chunked-dataset API, the streamed read pipeline's makespan
// (PFS fetch of slab i overlapping decompression of slab i-1) against the
// serial fetch-then-decompress schedule for the same container.
//
// The dataset×codec grid runs on the sweep engine (run_grid_bench):
// --serial/--verify/--reps/--jobs as in every grid bench. Every cell also
// proves the streamed round trip (write via the chunk API, read via the
// pipeline) bit-for-bit identical to the serial reference in all three
// IoTool containers ("bitpar" column; nonzero exit on any mismatch). The
// two makespan columns are host-measured pipeline schedules and are
// excluded from the --verify row comparison, like wall-clock columns
// elsewhere.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"
#include "io/io_tool.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Extension", "Read-back + decompress energy vs uncompressed read",
      env);

  const CpuModel& cpu = cpu_model("9480");

  struct Cell {
    std::string dataset;
    std::string codec;
  };
  const std::size_t per_dataset = eblc_names().size();
  std::vector<Cell> cells;
  for (const std::string& dataset : bench::paper_datasets()) {
    bench::bench_dataset(dataset, env);  // generate before the cells race
    for (const std::string& codec : eblc_names())
      cells.push_back({dataset, codec});
  }

  struct CellOut {
    bool supported = false;
    double read_j = 0.0;      // compressed-container read I/O
    double decomp_j = 0.0;    // decompression energy (memoized kernel)
    double orig_j = 0.0;      // uncompressed-container read I/O
    double stream_s = 0.0;    // streamed fetch→decompress makespan
    double serial_s = 0.0;    // serial fetch-then-decompress makespan
    bool bit_parity = false;  // streamed field == serial reference
  };
  std::atomic<bool> parity_ok{true};

  auto eval = [&](const Cell& cell, SweepCellContext& ctx) {
    const Field& f = bench::bench_dataset(cell.dataset, env);
    CellOut out;
    CompressOptions opt;
    opt.error_bound = eb;
    if (!compressor(cell.codec).supports(f, opt)) return out;
    out.supported = true;

    IoTool& tool = io_tool("HDF5");
    PfsSimulator pfs;
    PipelineConfig cfg;
    cfg.codec = cell.codec;
    cfg.error_bound = eb;
    cfg.cpu = cpu.name;

    // Serial reference: whole-blob container, priced with the symmetric
    // read model (open once + per-stripe RPCs + transfer).
    tool.write_field(pfs, "/r/orig", f);
    const Bytes blob = compressor(cell.codec).compress(f, opt);
    tool.write_blob(pfs, "/r/" + cell.codec, cell.dataset, blob);
    PowercapMonitor mon(cpu);
    out.read_j =
        mon.record_io("read", pfs.read_cost("/r/" + cell.codec).seconds)
            .joules;
    out.orig_j =
        mon.record_io("read-orig", pfs.read_cost("/r/orig").seconds).joules;
    const auto rec = bench::measure_compression(f, cfg, env, &ctx);
    out.decomp_j = rec.decompress_j;

    // Streamed cells: dump through the chunk API, restart through the
    // fetch→decompress pipeline, against the serial schedule — in every
    // container. bitpar ANDs the three round trips; the reported
    // makespans are the HDF5 pipeline's.
    out.bit_parity = true;
    for (const char* container : {"HDF5", "NetCDF", "ADIOS"}) {
      PipelineConfig scfg = cfg;
      scfg.io_library = container;
      const auto wrec = run_streamed_compress_write(f, scfg, pfs);
      const auto rrec = run_streamed_read(pfs, wrec.path, scfg);
      if (scfg.io_library == "HDF5") {
        out.stream_s = rrec.streamed_total_s;
        out.serial_s = rrec.serial_total_s;
      }
      const Field serial_field = read_chunked_field(pfs, wrec.path, container);
      const auto a = rrec.field.bytes();
      const auto b = serial_field.bytes();
      if (a.size() != b.size() ||
          !std::equal(a.begin(), a.end(), b.begin()))
        out.bit_parity = false;
    }
    if (!out.bit_parity) parity_ok = false;
    return out;
  };

  // Fragment column indices of the two pipeline-makespan cells, shared by
  // render and verify_view so the exclusion can't drift out of sync.
  constexpr std::size_t kStreamCol = 5, kSerialCol = 6;
  auto render = [](const Cell&, const CellOut& out) {
    if (!out.supported)
      return std::vector<std::string>(8, "n/a");
    const double total = out.read_j + out.decomp_j;
    std::vector<std::string> row(8);
    row[0] = fmt_double(out.read_j, 3);
    row[1] = fmt_double(out.decomp_j, 3);
    row[2] = fmt_double(total, 3);
    row[3] = fmt_double(out.orig_j, 3);
    row[4] = fmt_double(out.orig_j / total, 2) + "x";
    row[kStreamCol] = fmt_double(out.stream_s, 4);
    row[kSerialCol] = fmt_double(out.serial_s, 4);
    row[7] = out.bit_parity ? "ok" : "FAIL";
    return row;
  };
  // The makespan columns rest on live host timings of the pipeline run;
  // everything else must match the serial rerun exactly.
  auto verify_view = [](const Cell&, const std::vector<std::string>& row) {
    std::vector<std::string> deterministic;
    for (std::size_t i = 0; i < row.size(); ++i)
      if (i != kStreamCol && i != kSerialCol) deterministic.push_back(row[i]);
    return bench::detail::join_fragment(deterministic);
  };

  std::optional<bench::StreamedTable> table;
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell& cell, std::size_t index,
          const std::vector<std::string>& fragment) {
        if (index == 0)
          table.emplace(std::vector<std::string>{
              "Dataset", "Codec", "read comp (J)", "decomp (J)", "total (J)",
              "read orig (J)", "reduction", "strm read (s)", "serial (s)",
              "bitpar"});
        else if (index % per_dataset == 0)
          table->add_rule();
        std::vector<std::string> row = {cell.dataset, cell.codec};
        row.insert(row.end(), fragment.begin(), fragment.end());
        table->add_row(row);
      },
      verify_view);
  if (table) table->finish();
  bench::print_grid_summary(summary);

  if (!parity_ok)
    std::printf("\nBIT-PARITY FAILURE: a streamed read did not match its "
                "serial reference.\n");
  std::printf(
      "\nReading: the raw read-I/O energy shrinks by the compression\n"
      "ratio, but unlike the write path the *decompression* energy must be\n"
      "paid before analysis — so end-to-end read reductions only win when\n"
      "the data is large or the codec decodes cheaply (SZx, ZFP). The\n"
      "streamed pipeline claws part of that back: fetching slab i while\n"
      "slab i-1 decompresses hides most of the remaining read I/O time.\n");
  return !parity_ok ? 1 : summary.exit_code();
}
