// Zone-sharded partial reads at serving scale: how decode latency, bytes
// fetched, and energy per query scale with the zone count, the number of
// contending PFS clients, and the query size.
//
// Each grid cell builds its own PFS world: the field streams out through
// the zoned chunk API (run_streamed_compress_write, stream.slabs = zones),
// a reader fleet of clients-1 extra scopes registers to contend with the
// query, and a centered dim-0 slab query of the requested fraction runs
// through the partial-region pipeline (run_streamed_read_region). Every
// cell also decodes the identical query through the serial reference
// (read_region_reference) and requires bit parity ("bitpar" column;
// nonzero exit on any mismatch).
//
// The dim-0 slab query is the worst case for fetch amplification: it
// touches every element of the rows it covers, so amplification is purely
// the zone quantization ("amp" = fetched container fraction / queried row
// fraction; 1.0 means the index fetched exactly the query's share).
//
// Grid flags as in every grid bench: --scale/--reps/--seed/--serial/
// --verify/--jobs; plus --eb, --codec, --dataset, --json. The decode
// latency and energy columns ride on host-measured kernel timings and are
// excluded from the --verify row comparison, like wall-clock columns
// elsewhere.
//
// After the grid, a kernel section times the full-field zone decode —
// parallel (zone_decode) vs serial (zone_decode_serial) on the same
// ZonedField, plus the memcpy calibration row — and writes everything to
// BENCH_zones.json. CI's Release leg gates zone_decode throughput,
// normalized in-run by zone_decode_serial, against
// bench/baselines/BENCH_zones.json (scripts/check_perf_baseline.py).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <optional>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "compressors/zone.h"
#include "io/io_tool.h"

using namespace eblcio;

namespace {

struct QuerySpec {
  std::string label;
  int denom = 1;  // query covers ceil(d0 / denom) leading rows
};

volatile std::size_t g_sink = 0;

struct KernelResult {
  std::string name;
  double seconds = 0.0;
  double bytes = 0.0;
  double items = 0.0;
  double mbps() const { return bytes > 0 ? bytes / seconds / 1e6 : 0.0; }
  double msyms() const { return items > 0 ? items / seconds / 1e6 : 0.0; }
};

template <typename F>
KernelResult run_kernel(const std::string& name, int reps, double bytes,
                        double items, F&& fn) {
  KernelResult r;
  r.name = name;
  r.bytes = bytes;
  r.items = items;
  r.seconds = 1e30;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    g_sink = g_sink + fn();
    r.seconds = std::min(r.seconds, t.elapsed_s());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  const std::string codec = args.get("codec", "SZ3");
  const std::string dataset = args.get("dataset", "NYX");
  const std::string json_path = args.get("json", "BENCH_zones.json");
  bench::print_bench_header(
      "Zones", "Partial-region decode vs zones x clients x query size", env);

  const Field& field = bench::bench_dataset(dataset, env);
  const auto dims = field.shape().dims_vector();
  const std::size_t d0 = dims[0];

  struct Cell {
    int zones = 0;
    int clients = 0;
    QuerySpec query;
  };
  const std::vector<QuerySpec> queries{{"1/8", 8}, {"1/2", 2}, {"full", 1}};
  std::vector<Cell> cells;
  for (int zones : {2, 4, 8})
    for (int clients : {1, 4})
      for (const QuerySpec& q : queries) cells.push_back({zones, clients, q});
  const std::size_t per_group = queries.size();

  // The query box: a centered dim-0 slab of 1/denom of the rows, full
  // extent in the trailing dims (deliberately not zone-aligned, so most
  // queries straddle zone boundaries).
  const auto query_region = [&](const QuerySpec& q) {
    Region region;
    const std::size_t rows = std::max<std::size_t>(1, (d0 + q.denom - 1) /
                                                          q.denom);
    region.start.assign(dims.size(), 0);
    region.shape = dims;
    region.start[0] = (d0 - rows) / 2;
    region.shape[0] = rows;
    return region;
  };

  struct CellOut {
    std::size_t bytes_fetched = 0;
    double fetch_fraction = 0.0;  // of the whole container
    double amplification = 0.0;   // fetch fraction / queried row fraction
    int zones_decoded = 0;
    double stream_s = 0.0;  // streamed fetch->decode makespan
    double serial_s = 0.0;  // serial fetch-then-decode schedule
    double energy_j = 0.0;  // fetch + decode energy per query
    bool bit_parity = false;
  };
  std::atomic<bool> parity_ok{true};

  auto eval = [&](const Cell& cell, SweepCellContext&) {
    PfsSimulator pfs;
    PipelineConfig cfg;
    cfg.codec = codec;
    cfg.error_bound = eb;
    StreamConfig stream;
    stream.slabs = cell.zones;
    const auto wrec = run_streamed_compress_write(field, cfg, pfs, stream);

    // The contending fleet: clients-1 extra registered readers, so the
    // query's own scope brings the PFS's live client count to `clients`
    // and every ranged fetch is priced at that contention.
    std::optional<PfsSimulator::ReaderScope> fleet;
    if (cell.clients > 1) fleet.emplace(pfs, cell.clients - 1);

    const Region region = query_region(cell.query);
    const auto rec = run_streamed_read_region(pfs, wrec.path, region, cfg);

    CellOut out;
    out.bytes_fetched = rec.bytes_fetched;
    out.fetch_fraction = rec.fetch_fraction();
    const double row_fraction =
        static_cast<double>(region.shape[0]) / static_cast<double>(d0);
    out.amplification = out.fetch_fraction / row_fraction;
    out.zones_decoded = rec.zones_decoded;
    out.stream_s = rec.streamed_total_s;
    out.serial_s = rec.serial_total_s;
    out.energy_j = rec.fetch_j + rec.decompress_j;

    const Field ref = read_region_reference(pfs, wrec.path, region, "HDF5");
    const auto a = rec.field.bytes();
    const auto b = ref.bytes();
    out.bit_parity =
        a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
    if (!out.bit_parity) parity_ok = false;
    return out;
  };

  // Cell outputs captured for the JSON document. render runs serialized
  // (inside the sweep's streaming callback and the verify rerun), so a
  // plain map keyed by the cell coordinates is safe.
  const auto cell_key = [](const Cell& cell) {
    return "z" + std::to_string(cell.zones) + "_c" +
           std::to_string(cell.clients) + "_q" +
           std::to_string(cell.query.denom);
  };
  std::map<std::string, CellOut> outs;

  // Fragment columns resting on host-measured pipeline timings, excluded
  // from --verify (shared by render and verify_view).
  constexpr std::size_t kStreamCol = 4, kSerialCol = 5, kEnergyCol = 6;
  auto render = [&](const Cell& cell, const CellOut& out) {
    outs[cell_key(cell)] = out;
    std::vector<std::string> row(8);
    row[0] = fmt_double(static_cast<double>(out.bytes_fetched) / 1e6, 3);
    row[1] = fmt_double(out.fetch_fraction * 100.0, 1) + "%";
    row[2] = fmt_double(out.amplification, 2) + "x";
    row[3] = std::to_string(out.zones_decoded);
    row[kStreamCol] = fmt_double(out.stream_s, 4);
    row[kSerialCol] = fmt_double(out.serial_s, 4);
    row[kEnergyCol] = fmt_double(out.energy_j, 3);
    row[7] = out.bit_parity ? "ok" : "FAIL";
    return row;
  };
  auto verify_view = [](const Cell&, const std::vector<std::string>& row) {
    std::vector<std::string> deterministic;
    for (std::size_t i = 0; i < row.size(); ++i)
      if (i != kStreamCol && i != kSerialCol && i != kEnergyCol)
        deterministic.push_back(row[i]);
    return bench::detail::join_fragment(deterministic);
  };

  std::optional<bench::StreamedTable> table;
  bench::JsonObject json_cells;
  const auto summary = bench::run_grid_bench(
      cells, env, eval, render,
      [&](const Cell& cell, std::size_t index,
          const std::vector<std::string>& fragment) {
        if (index == 0)
          table.emplace(std::vector<std::string>{
              "zones", "clients", "query", "fetch (MB)", "fetch frac",
              "amp", "decoded", "strm (s)", "serial (s)", "energy (J)",
              "bitpar"});
        else if (index % per_group == 0)
          table->add_rule();
        std::vector<std::string> row = {std::to_string(cell.zones),
                                        std::to_string(cell.clients),
                                        cell.query.label};
        row.insert(row.end(), fragment.begin(), fragment.end());
        table->add_row(row);
      },
      verify_view);
  if (table) table->finish();
  bench::print_grid_summary(summary);

  // Emit the captured cells in grid order.
  for (const Cell& cell : cells) {
    const auto it = outs.find(cell_key(cell));
    if (it == outs.end()) continue;
    const CellOut& out = it->second;
    bench::JsonObject c;
    c.set("zones", static_cast<std::uint64_t>(cell.zones));
    c.set("clients", static_cast<std::uint64_t>(cell.clients));
    c.set("query", cell.query.label);
    c.set("bytes_fetched", static_cast<std::uint64_t>(out.bytes_fetched));
    c.set("fetch_fraction", out.fetch_fraction);
    c.set("amplification", out.amplification);
    c.set("zones_decoded", static_cast<std::uint64_t>(out.zones_decoded));
    c.set("decode_stream_s", out.stream_s);
    c.set("decode_serial_s", out.serial_s);
    c.set("energy_j", out.energy_j);
    json_cells.set(cell_key(cell), c);
  }

  // --- kernel section: full-field zone decode, parallel vs serial ----------
  const int reps = std::max(1, env.reps);
  CompressOptions opt;
  opt.error_bound = eb;
  const ZonedField zoned = ZoneCompressor(codec, 8).compress(field, opt);
  const double elems = static_cast<double>(field.shape().num_elements());
  const auto field_bytes = field.bytes();

  std::vector<KernelResult> kernels;
  {
    Bytes dst(field_bytes.size());
    kernels.push_back(run_kernel(
        "memcpy", reps, static_cast<double>(field_bytes.size()), 0, [&] {
          std::memcpy(dst.data(), field_bytes.data(), field_bytes.size());
          return static_cast<std::size_t>(dst[0]);
        }));
  }
  kernels.push_back(run_kernel("zone_decode", reps, 0, elems, [&] {
    return ZoneCompressor::decompress_all(zoned, true).size_bytes();
  }));
  kernels.push_back(run_kernel("zone_decode_serial", reps, 0, elems, [&] {
    return ZoneCompressor::decompress_all(zoned, false).size_bytes();
  }));
  const double speedup = kernels[2].seconds / kernels[1].seconds;

  // Round-trip sanity: never publish numbers for a broken decode path.
  {
    const Field par = ZoneCompressor::decompress_all(zoned, true);
    const Field ser = ZoneCompressor::decompress_all(zoned, false);
    const auto a = par.bytes();
    const auto b = ser.bytes();
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      std::fprintf(stderr,
                   "FATAL: parallel zone decode diverged from serial\n");
      return 1;
    }
  }

  std::printf("\nfull-field zone decode (8 zones, best of %d):\n", reps);
  bench::StreamedTable ktable({"kernel", "best (ms)", "Melem/s"});
  for (const auto& k : kernels)
    ktable.add_row({k.name, fmt_double(k.seconds * 1e3, 3),
                    k.items > 0 ? fmt_double(k.msyms(), 1) : "-"});
  ktable.finish();
  std::printf("parallel speedup over serial: %sx\n",
              fmt_double(speedup, 2).c_str());

  bench::JsonObject jkernels;
  for (const auto& k : kernels) {
    bench::JsonObject jk;
    jk.set("seconds", k.seconds);
    if (k.bytes > 0) jk.set("mbps", k.mbps());
    if (k.items > 0) jk.set("msyms_per_s", k.msyms());
    jkernels.set(k.name, jk);
  }
  bench::JsonObject doc;
  doc.set("schema", std::uint64_t{1});
  doc.set("bench", std::string("zone_scaling"));
  doc.set("reps", static_cast<std::uint64_t>(reps));
  doc.set("dataset", dataset);
  doc.set("codec", codec);
  doc.set("parallel_speedup", speedup);
  doc.set("cells", json_cells);
  doc.set("kernels", jkernels);
  if (!json_path.empty()) {
    if (!bench::write_json_file(json_path, doc)) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!parity_ok)
    std::printf("\nBIT-PARITY FAILURE: a region decode did not match its "
                "serial reference.\n");
  std::printf(
      "\nReading: bytes fetched track the query's row fraction, not the\n"
      "field size — the amplification column is the zone-quantization\n"
      "overhead (worst at many zones per queried row, 1.0x when zone\n"
      "boundaries align with the query). More contending clients stretch\n"
      "fetch time but leave bytes and decode energy untouched; more zones\n"
      "cut both the amplification and the streamed makespan, which is the\n"
      "serving-scale argument for zone-sharding checkpoints.\n");
  return !parity_ok ? 1 : summary.exit_code();
}
