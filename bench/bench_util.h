// Shared infrastructure for the paper-reproduction bench binaries.
//
// Every bench binary regenerates one table or figure of the paper. They
// share: dataset construction at a bench-friendly scale (--scale raises it
// toward paper size), the repetition protocol, and table output. Flags:
//   --scale=<f>   multiply default working dimensions (default 1.0; the
//                 default working size is the catalogue's shrunken size)
//   --reps=<n>    max repetitions per measurement (default 1; paper used 25)
//   --seed=<n>    generator seed
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/field.h"
#include "common/format.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/pipeline.h"
#include "data/dataset.h"

namespace eblcio::bench {

struct BenchEnv {
  double scale = 1.0;
  int reps = 1;
  std::uint64_t seed = 42;

  static BenchEnv from_cli(const CliArgs& args) {
    BenchEnv env;
    env.scale = args.get_double("scale", 1.0);
    env.reps = args.get_int("reps", 1);
    env.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    return env;
  }

  RepeatConfig repeat_config() const {
    RepeatConfig cfg;
    cfg.min_runs = std::min(2, reps);
    cfg.max_runs = std::max(reps, 2);
    return cfg;
  }
};

// Generates (and caches per-process) a data set at env.scale times its
// default working size.
const Field& bench_dataset(const std::string& name, const BenchEnv& env);

// The paper's error-bound sweep (Figs. 5/7/11): 1e-1 .. 1e-5.
const std::vector<double>& paper_bounds();

// The four Table-II data sets in figure order.
const std::vector<std::string>& paper_datasets();

// Standard header line for a bench binary.
void print_bench_header(const std::string& id, const std::string& title,
                        const BenchEnv& env);

// Repeated measurement of a compression pipeline cell, reusing the
// pipeline runner; returns mean values over env.reps runs.
CompressionRecord measure_compression(const Field& field,
                                      const PipelineConfig& config,
                                      const BenchEnv& env);

}  // namespace eblcio::bench
