// Shared infrastructure for the paper-reproduction bench binaries.
//
// Every bench binary regenerates one table or figure of the paper. They
// share: dataset construction at a bench-friendly scale (--scale raises it
// toward paper size), the Sec. IV-C repetition protocol, grid execution on
// the sweep engine (core/sweep.h), and streamed table output. Flags common
// to every grid bench:
//   --scale=<f>   multiply default working dimensions (default 1.0; the
//                 default working size is the catalogue's shrunken size)
//   --reps=<n>    repetition budget per measurement (default 1; the paper
//                 used up to 25, stopping early on a tight 95% CI)
//   --seed=<n>    generator seed
//   --serial      evaluate the grid in order on the calling thread instead
//                 of batching cells on the shared executor
//   --verify      after the sweep, re-run the identical grid serially and
//                 require the rendered rows to match bit-for-bit
//   --jobs=<n>    cap concurrently-batched cells (0 = one task per cell)
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "common/cli.h"
#include "common/field.h"
#include "common/format.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/pipeline.h"
#include "core/sweep.h"
#include "data/dataset.h"

namespace eblcio::bench {

struct BenchEnv {
  double scale = 1.0;
  int reps = 1;
  std::uint64_t seed = 42;
  bool serial = false;  // --serial: in-order grid on the calling thread
  bool verify = false;  // --verify: cross-check sweep against a serial rerun
  int jobs = 0;         // --jobs: cap concurrently-batched cells (0 = all)

  static BenchEnv from_cli(const CliArgs& args) {
    BenchEnv env;
    env.scale = args.get_double("scale", 1.0);
    env.reps = args.get_int("reps", 1);
    env.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    env.serial = args.get_bool("serial", false);
    env.verify = args.get_bool("verify", false);
    env.jobs = args.get_int("jobs", 0);
    return env;
  }

  // The Sec. IV-C protocol for this bench's --reps budget (shared clamp:
  // core/experiment.h::repeat_protocol).
  RepeatConfig repeat_config() const { return repeat_protocol(reps); }

  // Sweep-engine options for a grid bench: --serial degrades to the
  // in-order code path, --jobs bounds concurrently-runnable cells, and a
  // --reps budget > 1 engages ctx.repeat with the shared protocol.
  SweepOptions sweep_options() const {
    SweepOptions opt;
    opt.parallel = !serial;
    opt.max_tasks = jobs;
    if (reps > 1) opt.repeat = repeat_config();
    return opt;
  }
};

// Generates (and caches per-process) a data set at env.scale times its
// default working size. Thread-safe: sweep cells may call it concurrently.
const Field& bench_dataset(const std::string& name, const BenchEnv& env);

// The paper's error-bound sweep (Figs. 5/7/11): 1e-1 .. 1e-5.
const std::vector<double>& paper_bounds();

// The four Table-II data sets in figure order.
const std::vector<std::string>& paper_datasets();

// Standard header line for a bench binary.
void print_bench_header(const std::string& id, const std::string& title,
                        const BenchEnv& env);

// Repeated measurement of a compression pipeline cell, reusing the
// pipeline runner. The number of runs follows the shared repetition
// protocol (up to env.reps, stopping early on a tight 95% CI); the record
// kept is the least-noisy (fastest host) run, with quality and size
// deterministic across runs. When called from a sweep cell, pass `ctx` so
// the repetitions run under the sweep's configured protocol. Thread-safe
// and memoized per (field, codec, bound, threads): concurrent cells
// sharing a key block on one measurement and all observe bit-identical
// records — which is what makes --verify's sweep-vs-serial comparison
// exact even for measured quantities.
CompressionRecord measure_compression(const Field& field,
                                      const PipelineConfig& config,
                                      const BenchEnv& env,
                                      const SweepCellContext* ctx = nullptr);

// ---------------------------------------------------------------------------
// Grid-bench scaffolding: streamed tables and the sweep/verify driver.
// ---------------------------------------------------------------------------

// Incremental TextTable: the frame and header print on construction and
// each row prints (and flushes) the moment it is added, so partially
// complete grids render while later cells are still running. Column widths
// are fixed up front from the header (never below `min_width`), which is
// what makes streaming possible; a cell longer than its column overflows
// that row rather than re-aligning the table. finish() closes the frame.
class StreamedTable {
 public:
  explicit StreamedTable(std::vector<std::string> header,
                         std::ostream& os = default_stream(),
                         std::size_t min_width = 10);

  void add_row(std::vector<std::string> cells);  // prints immediately
  // Inserts a horizontal rule before the next added row.
  void add_rule();
  // Prints the closing rule; further rows are an error.
  void finish();

  std::size_t rows() const { return rows_; }

 private:
  static std::ostream& default_stream();

  std::vector<std::string> header_;
  std::vector<std::size_t> width_;
  std::ostream& os_;
  std::size_t rows_ = 0;
  bool pending_rule_ = false;
  bool finished_ = false;
};

// Outcome of run_grid_bench: the sweep statistics plus the --verify
// cross-check result.
struct GridRunSummary {
  SweepStats stats;
  bool serial = false;           // the main run used --serial
  bool verified = false;         // --verify was requested
  bool verify_trivial = false;   // --serial made the rerun a no-op check
  bool verify_ok = false;        // every rendered row matched bit-for-bit
  std::size_t verify_cells = 0;
  std::size_t verify_mismatches = 0;

  // Process exit status for a bench: nonzero iff --verify ran and failed.
  int exit_code() const { return verified && !verify_ok ? 1 : 0; }
};

// Standard trailer: cell counts, wall vs summed cell time, verify verdict.
void print_grid_summary(const GridRunSummary& summary);

namespace detail {
std::string join_fragment(const std::vector<std::string>& fragment);
}

// ---------------------------------------------------------------------------
// Machine-readable bench output: a minimal insertion-ordered JSON builder.
// ---------------------------------------------------------------------------

// Tiny JSON object builder for BENCH_*.json emission (micro_codecs writes
// BENCH_codecs.json through it; the perf-regression smoke in CI diffs that
// file against bench/baselines/). Keys keep insertion order so diffs stay
// readable; values are numbers, strings, or nested objects.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const JsonObject& value);

  // Renders with 2-space indentation and a trailing newline at top level.
  std::string dump(int indent = 0) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;  // pre-rendered
  std::vector<bool> nested_;  // entry renders as an object (re-indented)
};

// Writes `json.dump()` to `path` (truncating). Returns false on I/O error.
bool write_json_file(const std::string& path, const JsonObject& json);

// The one driver every grid bench runs through.
//
// Executes `eval(cell, ctx)` over the whole domain on the sweep engine
// (parallel unless env.serial), renders each completed cell with
// `render(cell, result) -> row fragment`, and hands the fragments to
// `on_row` serialized and in domain order — benches assemble streamed
// tables there. With env.verify the identical grid re-runs in order on the
// calling thread and every cell's rendered fragment must match the sweep's
// bit-for-bit (`verify_view`, when given, projects the fragment down to
// its deterministic columns first — host-measured wall-clock columns are
// legitimately run-to-run noise; everything else must be exact).
//
// Cell failures follow sweep semantics: isolated per slot, skipped by the
// streaming callback, and rethrown here once the grid settles.
template <typename Cell, typename Eval, typename Render>
GridRunSummary run_grid_bench(
    std::vector<Cell> cells, const BenchEnv& env, Eval eval, Render render,
    const std::type_identity_t<std::function<void(
        const Cell&, std::size_t, const std::vector<std::string>&)>>& on_row,
    const std::type_identity_t<std::function<std::string(
        const Cell&, const std::vector<std::string>&)>>& verify_view =
        nullptr) {
  using Result = std::invoke_result_t<Eval&, const Cell&, SweepCellContext&>;
  const auto view = [&](const Cell& cell,
                        const std::vector<std::string>& fragment) {
    return verify_view ? verify_view(cell, fragment)
                       : detail::join_fragment(fragment);
  };

  GridRunSummary summary;
  summary.serial = env.serial;
  std::vector<std::string> streamed(cells.size());
  const SweepOptions options = env.sweep_options();
  const auto report = sweep_grid(
      std::move(cells), eval, options,
      [&](const SweepCell<Cell, Result>& c) {
        if (!c.ok()) return;  // failures rethrow below; nothing to render
        const std::vector<std::string> fragment = render(c.cell, *c.result);
        streamed[c.index] = view(c.cell, fragment);
        if (on_row) on_row(c.cell, c.index, fragment);
      });
  report.rethrow_first_error();
  summary.stats = report.stats;
  if (!env.verify) return summary;

  summary.verified = true;
  if (env.serial) {
    // The main run already was the serial path; a rerun would compare
    // serial against serial. Report it as trivially passing.
    summary.verify_trivial = true;
    summary.verify_ok = true;
    return summary;
  }
  SweepOptions ref_options = options;
  ref_options.parallel = false;
  std::vector<Cell> again;
  again.reserve(report.cells.size());
  for (const auto& c : report.cells) again.push_back(c.cell);
  const auto ref = sweep_grid(std::move(again), eval, ref_options);
  ref.rethrow_first_error();
  summary.verify_ok = true;
  summary.verify_cells = ref.cells.size();
  for (const auto& c : ref.cells) {
    if (!c.ok()) continue;
    if (view(c.cell, render(c.cell, *c.result)) != streamed[c.index]) {
      summary.verify_ok = false;
      ++summary.verify_mismatches;
    }
  }
  return summary;
}

}  // namespace eblcio::bench
