// Fig. 10 — Energy consumption of the EBLCs in OpenMP mode across data
// sets and CPUs at a fixed REL bound of 1e-3, threads 1..64 in powers of
// two (strong scaling). Parallel kernels really execute; note that thread
// counts above the host's cores oversubscribe, which flattens the measured
// high-thread tail the same way the real experiment plateaus.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "parallel/omp_pipeline.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Fig. 10", "OpenMP comp+decomp energy vs threads (REL 1e-3)", env);

  for (const CpuModel& cpu : cpu_catalog()) {
    std::printf("\n=== %s ===\n", cpu.name.c_str());
    for (const std::string& dataset : bench::paper_datasets()) {
      const Field& f = bench::bench_dataset(dataset, env);
      std::printf("\n(%s)\n", dataset.c_str());
      TextTable t({"Threads", "SZ2 c/d (J)", "SZ3 c/d (J)", "ZFP c/d (J)",
                   "QoZ c/d (J)", "SZx c/d (J)"});
      for (int threads : paper_thread_sweep()) {
        std::vector<std::string> row = {std::to_string(threads)};
        for (const std::string& codec : eblc_names()) {
          CompressOptions opt;
          opt.error_bound = eb;
          opt.threads = threads;
          if (!compressor(codec).supports(f, opt)) {
            row.push_back("n/a");
            continue;
          }
          PipelineConfig cfg;
          cfg.codec = codec;
          cfg.error_bound = eb;
          cfg.threads = threads;
          cfg.cpu = cpu.name;
          const auto rec = bench::measure_compression(f, cfg, env);
          row.push_back(fmt_double(rec.compress_j, 1) + "/" +
                        fmt_double(rec.decompress_j, 1));
        }
        t.add_row(row);
      }
      t.print(std::cout);
    }
  }

  std::printf(
      "\nExpected shape (paper Fig. 10): energy falls with thread count\n"
      "then plateaus; SZx and SZ3 scale best (paper: up to ~6x reduction\n"
      "at 64 threads on S3D); ZFP barely benefits because its OpenMP mode\n"
      "parallelizes compression only (decompression stays serial); SZ2 is\n"
      "limited by its serial Huffman stage and skips 1D/4D data (n/a).\n");
  return 0;
}
