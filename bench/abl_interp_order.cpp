// Ablation — interpolation order in the SZ3/QoZ engine (DESIGN.md §5.3):
// cubic (4-point) vs linear (2-point) prediction, per data set and bound.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/timer.h"
#include "compressors/interp_core.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Ablation", "SZ3 interpolation order: cubic vs linear", env);

  TextTable t({"Dataset", "REL", "order", "ratio", "PSNR (dB)",
               "compress (s)"});
  for (const std::string& dataset : {"CESM", "NYX", "S3D"}) {
    const Field& f = bench::bench_dataset(dataset, env);
    const auto range = f.value_range();
    for (double eb : {1e-2, 1e-4}) {
      for (bool cubic : {true, false}) {
        InterpConfig config;
        config.cubic = cubic;
        const double abs_eb = eb * range.span();

        InterpEncoding enc;
        const double t_comp =
            timed_s([&] { enc = interp_compress(f, abs_eb, config); });
        const Bytes payload = interp_payload_encode(config, enc);

        BlobHeader header;
        header.codec = "SZ3";
        header.dtype = f.dtype();
        header.dims = f.shape().dims_vector();
        header.abs_error_bound = abs_eb;
        const Field recon = interp_decompress(
            header, config, enc.codes, enc.anchors, enc.unpred);
        const auto st = compute_error_stats(f, recon);

        t.add_row({dataset, fmt_error_bound(eb), cubic ? "cubic" : "linear",
                   fmt_double(compression_ratio(f.size_bytes(),
                                                payload.size()),
                              2),
                   fmt_double(st.psnr_db, 2), fmt_double(t_comp, 3)});
      }
    }
    t.add_rule();
  }
  t.print(std::cout);

  std::printf(
      "\nReading: cubic interpolation buys a better ratio on smooth fields\n"
      "for a small time overhead — SZ3's dynamic-spline design choice.\n");
  return 0;
}
