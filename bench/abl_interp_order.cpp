// Ablation — interpolation order in the SZ3/QoZ engine (DESIGN.md §5.3):
// cubic (4-point) vs linear (2-point) prediction, per data set and bound.
//
// The dataset×bound×order grid (3×2×2 = 12 cells) runs as a sweep on the
// shared executor; rows stream as cells resolve. --verify compares the
// deterministic columns (ratio, PSNR) bit-for-bit; the compress-time
// column is excluded — wall clock is run-to-run noise.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "compressors/interp_core.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Ablation", "SZ3 interpolation order: cubic vs linear", env);

  struct Cell {
    std::string dataset;
    double eb = 0.0;
    bool cubic = true;
  };
  const std::size_t per_dataset = 2 * 2;  // bounds × orders
  std::vector<Cell> cells;
  for (const std::string& dataset : {"CESM", "NYX", "S3D"}) {
    bench::bench_dataset(dataset, env);  // generate before the cells race
    for (double eb : {1e-2, 1e-4})
      for (bool cubic : {true, false}) cells.push_back({dataset, eb, cubic});
  }

  struct CellOut {
    double ratio = 0.0;
    double psnr_db = 0.0;
    double t_comp = 0.0;
  };
  auto eval = [&](const Cell& cell, SweepCellContext&) {
    const Field& f = bench::bench_dataset(cell.dataset, env);
    InterpConfig config;
    config.cubic = cell.cubic;
    const double abs_eb = cell.eb * f.value_range().span();

    InterpEncoding enc;
    CellOut out;
    out.t_comp = timed_s([&] { enc = interp_compress(f, abs_eb, config); });
    const Bytes payload = interp_payload_encode(config, enc);

    BlobHeader header;
    header.codec = "SZ3";
    header.dtype = f.dtype();
    header.dims = f.shape().dims_vector();
    header.abs_error_bound = abs_eb;
    const Field recon = interp_decompress(header, config, enc.codes,
                                          enc.anchors, enc.unpred);
    out.ratio = compression_ratio(f.size_bytes(), payload.size());
    out.psnr_db = compute_error_stats(f, recon).psnr_db;
    return out;
  };
  auto render = [](const Cell& cell, const CellOut& out) {
    return std::vector<std::string>{
        cell.dataset, fmt_error_bound(cell.eb),
        cell.cubic ? "cubic" : "linear", fmt_double(out.ratio, 2),
        fmt_double(out.psnr_db, 2), fmt_double(out.t_comp, 3)};
  };
  // Columns 0..4 are pure functions of the cell; 5 is a host timing.
  const std::size_t kDeterministicCols = 5;

  bench::StreamedTable table(
      {"Dataset", "REL", "order", "ratio", "PSNR (dB)", "compress (s)"});
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell&, std::size_t index,
          const std::vector<std::string>& fragment) {
        table.add_row(fragment);
        if ((index + 1) % per_dataset == 0) table.add_rule();
      },
      [&](const Cell&, const std::vector<std::string>& fragment) {
        return bench::detail::join_fragment(
            {fragment.begin(), fragment.begin() + kDeterministicCols});
      });
  table.finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nReading: cubic interpolation buys a better ratio on smooth fields\n"
      "for a small time overhead — SZ3's dynamic-spline design choice.\n");
  return summary.exit_code();
}
