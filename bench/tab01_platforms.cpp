// Table I — Summary of Node Specifications, plus the calibrated power-model
// parameters this library attaches to each platform (DESIGN.md §2).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "energy/cpu_model.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header("Table I", "Summary of Node Specifications", env);

  TextTable t({"System", "Intel CPU Model", "Cores", "RAM", "CPU TDP",
               "idle W/pkg", "W/core", "speed", "IO W"});
  for (const CpuModel& cpu : cpu_catalog()) {
    t.add_row({cpu.system, cpu.name, std::to_string(cpu.cores), cpu.memory,
               fmt_double(cpu.tdp_w, 0) + "W", fmt_double(cpu.idle_w, 0),
               fmt_double(cpu.active_core_w, 1),
               fmt_double(cpu.speed_factor, 2),
               fmt_double(cpu.io_interface_w, 0)});
  }
  t.print(std::cout);

  std::printf(
      "\nFirst three columns reproduce the paper's Table I; the remaining\n"
      "columns are this library's calibrated platform parameters (power\n"
      "model endpoints and host-to-platform speed dilation).\n");
  return 0;
}
