// Fig. 8 — Compression ratio against total (comp + decomp) energy for a
// field of S3D across error bounds and compressors, Intel Xeon CPU MAX
// 9480. Emitted as one series per compressor.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Fig. 8", "Compression ratio vs total energy, S3D, MAX 9480", env);

  const Field& f = bench::bench_dataset("S3D", env);
  TextTable t({"Compressor", "REL Bound", "Compression Ratio",
               "Total Energy (J)"});
  for (const std::string& codec : eblc_names()) {
    for (double eb : bench::paper_bounds()) {
      PipelineConfig cfg;
      cfg.codec = codec;
      cfg.error_bound = eb;
      cfg.cpu = "9480";
      const auto rec = bench::measure_compression(f, cfg, env);
      t.add_row({codec, fmt_error_bound(eb), fmt_double(rec.ratio, 2),
                 fmt_double(rec.total_j(), 2)});
    }
    t.add_rule();
  }
  t.print(std::cout);

  std::printf(
      "\nExpected shape (paper Fig. 8): an inverse frontier — higher\n"
      "compression ratios (looser bounds) cost less energy; SZx sits at\n"
      "the low-energy/low-ratio end, SZ3/QoZ reach the highest ratios,\n"
      "and within each compressor energy falls as CR rises.\n");
  return 0;
}
