// Fig. 8 — Compression ratio against total (comp + decomp) energy for a
// field of S3D across error bounds and compressors, Intel Xeon CPU MAX
// 9480. Emitted as one series per compressor.
//
// The codec×bound grid (5×5 = 25 cells) runs as a sweep on the shared
// executor; each row streams the moment its cell resolves. --serial,
// --verify and --reps behave as documented in bench/README.md.
#include <cstdio>

#include "bench_util.h"
#include "compressors/compressor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Fig. 8", "Compression ratio vs total energy, S3D, MAX 9480", env);

  const Field& f = bench::bench_dataset("S3D", env);
  struct Cell {
    std::string codec;
    double eb = 0.0;
  };
  const std::size_t per_series = bench::paper_bounds().size();
  std::vector<Cell> cells;
  for (const std::string& codec : eblc_names())
    for (double eb : bench::paper_bounds()) cells.push_back({codec, eb});

  auto eval = [&](const Cell& cell, SweepCellContext& ctx) {
    PipelineConfig cfg;
    cfg.codec = cell.codec;
    cfg.error_bound = cell.eb;
    cfg.cpu = "9480";
    return bench::measure_compression(f, cfg, env, &ctx);
  };
  auto render = [](const Cell& cell, const CompressionRecord& rec) {
    return std::vector<std::string>{cell.codec, fmt_error_bound(cell.eb),
                                    fmt_double(rec.ratio, 2),
                                    fmt_double(rec.total_j(), 2)};
  };

  bench::StreamedTable table({"Compressor", "REL Bound", "Compression Ratio",
                              "Total Energy (J)"});
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell&, std::size_t index,
          const std::vector<std::string>& fragment) {
        table.add_row(fragment);
        if ((index + 1) % per_series == 0) table.add_rule();
      });
  table.finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nExpected shape (paper Fig. 8): an inverse frontier — higher\n"
      "compression ratios (looser bounds) cost less energy; SZx sits at\n"
      "the low-energy/low-ratio end, SZ3/QoZ reach the highest ratios,\n"
      "and within each compressor energy falls as CR rises.\n");
  return summary.exit_code();
}
