// Table III — Select EBLC Statistics (compression ratio and PSNR) for
// SZ3 / ZFP / SZx on NYX, HACC and S3D at REL bounds 1e-1, 1e-3, 1e-5.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Table III", "Select EBLC statistics (CR and PSNR)", env);

  const std::vector<std::string> datasets = {"NYX", "HACC", "S3D"};
  const std::vector<double> bounds = {1e-1, 1e-3, 1e-5};
  const std::vector<std::string> codecs = {"SZ3", "ZFP", "SZx"};

  TextTable t({"Data Set", "REL", "SZ3 CR", "SZ3 PSNR", "ZFP CR",
               "ZFP PSNR", "SZx CR", "SZx PSNR"});
  for (const std::string& dataset : datasets) {
    const Field& f = bench::bench_dataset(dataset, env);
    bool first = true;
    for (double eb : bounds) {
      std::vector<std::string> row = {first ? dataset : "",
                                      fmt_error_bound(eb)};
      first = false;
      for (const std::string& codec : codecs) {
        PipelineConfig cfg;
        cfg.codec = codec;
        cfg.error_bound = eb;
        const auto rec = bench::measure_compression(f, cfg, env);
        row.push_back(fmt_double(rec.ratio, 2));
        row.push_back(fmt_double(rec.quality.psnr_db, 2));
      }
      t.add_row(row);
    }
    t.add_rule();
  }
  t.print(std::cout);

  std::printf(
      "\nExpected shape (paper Tab. III): SZ3 achieves by far the highest\n"
      "ratios at loose bounds (NYX 1E-01 is extreme: ~1e5 in the paper);\n"
      "SZx trades ratio for speed (lowest CR); HACC compresses worst of\n"
      "the three sets at tight bounds (CR -> ~2-3); PSNR rises ~20 dB per\n"
      "decade of bound for every codec.\n");
  return 0;
}
