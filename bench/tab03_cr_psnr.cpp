// Table III — Select EBLC Statistics (compression ratio and PSNR) for
// SZ3 / ZFP / SZx on NYX, HACC and S3D at REL bounds 1e-1, 1e-3, 1e-5.
//
// The dataset×bound×codec grid (3×3×3 = 27 cells) runs as a sweep on the
// shared executor; each table row streams the moment its three codec
// cells resolve. --serial, --verify and --reps behave as documented in
// bench/README.md.
#include <cstdio>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Table III", "Select EBLC statistics (CR and PSNR)", env);

  const std::vector<std::string> datasets = {"NYX", "HACC", "S3D"};
  const std::vector<double> bounds = {1e-1, 1e-3, 1e-5};
  const std::vector<std::string> codecs = {"SZ3", "ZFP", "SZx"};

  struct Cell {
    std::string dataset;
    double eb = 0.0;
    std::string codec;
  };
  const std::size_t per_row = codecs.size();
  const std::size_t per_dataset = bounds.size() * per_row;
  std::vector<Cell> cells;
  for (const std::string& dataset : datasets) {
    bench::bench_dataset(dataset, env);  // generate before the cells race
    for (double eb : bounds)
      for (const std::string& codec : codecs)
        cells.push_back({dataset, eb, codec});
  }

  auto eval = [&](const Cell& cell, SweepCellContext& ctx) {
    PipelineConfig cfg;
    cfg.codec = cell.codec;
    cfg.error_bound = cell.eb;
    return bench::measure_compression(bench::bench_dataset(cell.dataset, env),
                                      cfg, env, &ctx);
  };
  auto render = [](const Cell&, const CompressionRecord& rec) {
    return std::vector<std::string>{fmt_double(rec.ratio, 2),
                                    fmt_double(rec.quality.psnr_db, 2)};
  };

  bench::StreamedTable table({"Data Set", "REL", "SZ3 CR", "SZ3 PSNR",
                              "ZFP CR", "ZFP PSNR", "SZx CR", "SZx PSNR"});
  std::vector<std::string> row;
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell& cell, std::size_t index,
          const std::vector<std::string>& fragment) {
        const std::size_t in_dataset = index % per_dataset;
        if (index % per_row == 0)
          row = {in_dataset == 0 ? cell.dataset : "", fmt_error_bound(cell.eb)};
        row.insert(row.end(), fragment.begin(), fragment.end());
        if (row.size() == 2 + 2 * per_row) {
          table.add_row(row);
          if (in_dataset + per_row == per_dataset) table.add_rule();
        }
      });
  table.finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nExpected shape (paper Tab. III): SZ3 achieves by far the highest\n"
      "ratios at loose bounds (NYX 1E-01 is extreme: ~1e5 in the paper);\n"
      "SZx trades ratio for speed (lowest CR); HACC compresses worst of\n"
      "the three sets at tight bounds (CR -> ~2-3); PSNR rises ~20 dB per\n"
      "decade of bound for every codec.\n");
  return summary.exit_code();
}
