// Sector-ring transport scaling: how the streamed-write makespan responds
// to sector size, ring depth (credits per channel), channel count, and
// contending PFS clients — the knobs of the io/transport endpoint.
//
// Each grid cell builds its own PFS world with a deliberately wire-heavy
// configuration (small stripes, fat per-stripe RPC, modest client link):
// the regime the transport exists for, where the blocking per-chunk append
// path serializes compression behind stripe RPCs and transfer. The cell
// streams the dataset out twice — once through the sector-ring transport
// (run_streamed_compress_write, stream.use_transport = true) and once
// through the PR-8 blocking path — and requires the two containers to be
// byte-identical ("bitpar" column; nonzero exit on any mismatch). The
// speedup column is blocking_total_s / streamed_total_s from the
// transported run's own reconstruction, so both schedules rest on the same
// host compress samples.
//
// Grid flags as in every grid bench: --scale/--reps/--seed/--serial/
// --verify/--jobs; plus --eb, --codec, --dataset, --json. Modeled-time and
// occupancy columns ride on host-measured kernel timings and are excluded
// from the --verify row comparison; sector counts and bit parity are
// deterministic and kept.
//
// After the grid, a kernel section times the full transported write
// (streamed_write) vs the blocking write (streamed_write_serial) plus the
// memcpy calibration row, and writes everything to BENCH_transport.json.
// CI's Release leg gates streamed_write throughput, normalized in-run by
// streamed_write_serial, against bench/baselines/BENCH_transport.json
// (scripts/check_perf_baseline.py).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>

#include "bench_util.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "io/pfs.h"

using namespace eblcio;

namespace {

volatile std::size_t g_sink = 0;

struct KernelResult {
  std::string name;
  double seconds = 0.0;
  double bytes = 0.0;
  double mbps() const { return bytes > 0 ? bytes / seconds / 1e6 : 0.0; }
};

template <typename F>
KernelResult run_kernel(const std::string& name, int reps, double bytes,
                        F&& fn) {
  KernelResult r;
  r.name = name;
  r.bytes = bytes;
  r.seconds = 1e30;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    g_sink = g_sink + fn();
    r.seconds = std::min(r.seconds, t.elapsed_s());
  }
  return r;
}

// The wire-heavy PFS the sweep prices against: 128 KiB stripes with a fat
// per-stripe RPC and a deliberately thin client link, so chunk movement —
// not compression — dominates the schedule. Both paths are priced on the
// same wire; what the sweep isolates is how much of the per-stripe RPC
// budget the transport hides under concurrent channel transfers.
PfsConfig wire_heavy_pfs() {
  PfsConfig pc;
  pc.stripe_size = 32u << 10;
  pc.rpc_latency_s = 2e-3;
  pc.client_bandwidth_bps = 4e6;
  pc.ost_bandwidth_bps = 1.2e9;
  return pc;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-4);
  const std::string codec = args.get("codec", "SZx");
  const std::string dataset = args.get("dataset", "NYX");
  const std::string json_path = args.get("json", "BENCH_transport.json");
  bench::print_bench_header(
      "Transport",
      "Streamed write vs sector size x ring depth x channels x clients",
      env);

  const Field& field = bench::bench_dataset(dataset, env);

  struct Cell {
    std::size_t sector_kb = 0;
    int depth = 0;
    int channels = 0;
    int clients = 0;
  };
  std::vector<Cell> cells;
  for (std::size_t sector_kb : {64u, 256u})
    for (int depth : {1, 4, 8})
      for (int channels : {1, 2, 4})
        for (int clients : {1, 4})
          cells.push_back({sector_kb, depth, channels, clients});
  const std::size_t per_group = 6;  // channels x clients rows per depth

  struct CellOut {
    std::size_t sectors = 0;
    std::size_t credit_stalls = 0;
    double mean_inflight = 0.0;
    double stream_s = 0.0;    // transported makespan
    double blocking_s = 0.0;  // PR-8 blocking-path reconstruction
    double speedup = 0.0;
    bool bit_parity = false;
  };
  std::atomic<bool> parity_ok{true};

  auto eval = [&](const Cell& cell, SweepCellContext&) {
    PipelineConfig cfg;
    cfg.codec = codec;
    cfg.error_bound = eb;
    StreamConfig stream;
    stream.slabs = 12;
    stream.use_transport = true;
    stream.transport.sector_bytes = cell.sector_kb << 10;
    stream.transport.ring_depth = cell.depth;
    stream.transport.channels = cell.channels;

    // Transported run, priced against clients-1 extra registered writers.
    PfsSimulator pfs(wire_heavy_pfs());
    std::optional<PfsSimulator::WriterScope> fleet;
    if (cell.clients > 1) fleet.emplace(pfs, cell.clients - 1);
    const auto rec = run_streamed_compress_write(field, cfg, pfs, stream);

    // Blocking run of the identical pipeline in its own world: the tentpole
    // invariant is that the two containers are byte-identical.
    StreamConfig blocking = stream;
    blocking.use_transport = false;
    PfsSimulator blocking_pfs(wire_heavy_pfs());
    std::optional<PfsSimulator::WriterScope> blocking_fleet;
    if (cell.clients > 1) blocking_fleet.emplace(blocking_pfs,
                                                 cell.clients - 1);
    const auto bre =
        run_streamed_compress_write(field, cfg, blocking_pfs, blocking);

    CellOut out;
    out.sectors = rec.transport.sectors;
    out.credit_stalls = rec.transport.credit_stalls;
    out.mean_inflight = rec.transport.mean_inflight;
    out.stream_s = rec.streamed_total_s;
    out.blocking_s = rec.blocking_total_s;
    out.speedup =
        rec.streamed_total_s > 0 ? rec.blocking_total_s / rec.streamed_total_s
                                 : 0.0;
    out.bit_parity = pfs.read_file(rec.path) == blocking_pfs.read_file(bre.path);
    if (!out.bit_parity) parity_ok = false;
    return out;
  };

  const auto cell_key = [](const Cell& cell) {
    return "s" + std::to_string(cell.sector_kb) + "_d" +
           std::to_string(cell.depth) + "_ch" +
           std::to_string(cell.channels) + "_c" + std::to_string(cell.clients);
  };
  std::map<std::string, CellOut> outs;

  // Columns resting on host-measured compress samples or host scheduling
  // races (stalls, occupancy, modeled times), excluded from --verify.
  constexpr std::size_t kStallCol = 1, kInflightCol = 2, kStreamCol = 3,
                        kBlockCol = 4, kSpeedupCol = 5;
  auto render = [&](const Cell& cell, const CellOut& out) {
    outs[cell_key(cell)] = out;
    std::vector<std::string> row(7);
    row[0] = std::to_string(out.sectors);
    row[kStallCol] = std::to_string(out.credit_stalls);
    row[kInflightCol] = fmt_double(out.mean_inflight, 2);
    row[kStreamCol] = fmt_double(out.stream_s, 4);
    row[kBlockCol] = fmt_double(out.blocking_s, 4);
    row[kSpeedupCol] = fmt_double(out.speedup, 2) + "x";
    row[6] = out.bit_parity ? "ok" : "FAIL";
    return row;
  };
  auto verify_view = [](const Cell&, const std::vector<std::string>& row) {
    std::vector<std::string> deterministic;
    for (std::size_t i = 0; i < row.size(); ++i)
      if (i != kStallCol && i != kInflightCol && i != kStreamCol &&
          i != kBlockCol && i != kSpeedupCol)
        deterministic.push_back(row[i]);
    return bench::detail::join_fragment(deterministic);
  };

  std::optional<bench::StreamedTable> table;
  const auto summary = bench::run_grid_bench(
      cells, env, eval, render,
      [&](const Cell& cell, std::size_t index,
          const std::vector<std::string>& fragment) {
        if (index == 0)
          table.emplace(std::vector<std::string>{
              "sector", "depth", "chan", "clients", "sectors", "stalls",
              "inflight", "strm (s)", "blocking (s)", "speedup", "bitpar"});
        else if (index % per_group == 0)
          table->add_rule();
        std::vector<std::string> row = {std::to_string(cell.sector_kb) + "K",
                                        std::to_string(cell.depth),
                                        std::to_string(cell.channels),
                                        std::to_string(cell.clients)};
        row.insert(row.end(), fragment.begin(), fragment.end());
        table->add_row(row);
      },
      verify_view);
  if (table) table->finish();
  bench::print_grid_summary(summary);

  // The acceptance slice: ring depth >= 4 with >= 2 channels must beat the
  // blocking path.
  double accept_speedup = 0.0;
  bench::JsonObject json_cells;
  for (const Cell& cell : cells) {
    const auto it = outs.find(cell_key(cell));
    if (it == outs.end()) continue;
    const CellOut& out = it->second;
    if (cell.depth >= 4 && cell.channels >= 2)
      accept_speedup = std::max(accept_speedup, out.speedup);
    bench::JsonObject c;
    c.set("sector_kb", static_cast<std::uint64_t>(cell.sector_kb));
    c.set("ring_depth", static_cast<std::uint64_t>(cell.depth));
    c.set("channels", static_cast<std::uint64_t>(cell.channels));
    c.set("clients", static_cast<std::uint64_t>(cell.clients));
    c.set("sectors", static_cast<std::uint64_t>(out.sectors));
    c.set("credit_stalls", static_cast<std::uint64_t>(out.credit_stalls));
    c.set("mean_inflight", out.mean_inflight);
    c.set("stream_s", out.stream_s);
    c.set("blocking_s", out.blocking_s);
    c.set("speedup", out.speedup);
    json_cells.set(cell_key(cell), c);
  }
  std::printf("\nbest transport speedup at depth>=4, channels>=2: %sx\n",
              fmt_double(accept_speedup, 2).c_str());

  // --- kernel section: transported vs blocking streamed write --------------
  const int reps = std::max(1, env.reps);
  const double field_mb = static_cast<double>(field.size_bytes());
  PipelineConfig kcfg;
  kcfg.codec = codec;
  kcfg.error_bound = eb;
  StreamConfig kstream;
  kstream.slabs = 12;

  std::vector<KernelResult> kernels;
  {
    const auto src = field.bytes();
    Bytes dst(src.size());
    kernels.push_back(
        run_kernel("memcpy", reps, static_cast<double>(src.size()), [&] {
          std::memcpy(dst.data(), src.data(), src.size());
          return static_cast<std::size_t>(dst[0]);
        }));
  }
  kernels.push_back(run_kernel("streamed_write", reps, field_mb, [&] {
    PfsSimulator pfs(wire_heavy_pfs());
    StreamConfig s = kstream;
    s.use_transport = true;
    return run_streamed_compress_write(field, kcfg, pfs, s).compressed_bytes;
  }));
  kernels.push_back(run_kernel("streamed_write_serial", reps, field_mb, [&] {
    PfsSimulator pfs(wire_heavy_pfs());
    StreamConfig s = kstream;
    s.use_transport = false;
    return run_streamed_compress_write(field, kcfg, pfs, s).compressed_bytes;
  }));

  std::printf("\nstreamed write, host wall (best of %d):\n", reps);
  bench::StreamedTable ktable({"kernel", "best (ms)", "MB/s"});
  for (const auto& k : kernels)
    ktable.add_row({k.name, fmt_double(k.seconds * 1e3, 3),
                    fmt_double(k.mbps(), 1)});
  ktable.finish();

  bench::JsonObject jkernels;
  for (const auto& k : kernels) {
    bench::JsonObject jk;
    jk.set("seconds", k.seconds);
    jk.set("mbps", k.mbps());
    jkernels.set(k.name, jk);
  }
  bench::JsonObject doc;
  doc.set("schema", std::uint64_t{1});
  doc.set("bench", std::string("transport_scaling"));
  doc.set("reps", static_cast<std::uint64_t>(reps));
  doc.set("dataset", dataset);
  doc.set("codec", codec);
  doc.set("accept_speedup", accept_speedup);
  doc.set("cells", json_cells);
  doc.set("kernels", jkernels);
  if (!json_path.empty()) {
    if (!bench::write_json_file(json_path, doc)) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!parity_ok)
    std::printf("\nBIT-PARITY FAILURE: a transported container did not match "
                "its blocking twin.\n");
  std::printf(
      "\nReading: the speedup is the per-stripe RPC budget the transport\n"
      "hides under concurrent channel transfers. With one channel every\n"
      "sector RPC serializes against the link — small sectors pay *more*\n"
      "RPCs than the blocking path's per-slab appends and dip below 1x —\n"
      "while two or more channels overlap each sector's RPC with the\n"
      "previous sector's transfer and the speedup jumps. Ring depth is\n"
      "credits per channel: at depth 1 a single channel runs lockstep\n"
      "(stall column ~ sector count), and deeper rings mostly convert\n"
      "stalls into in-flight occupancy. Contention prices both paths on\n"
      "the same wire, so the clients column stretches makespans without\n"
      "moving the ratio.\n");
  return !parity_ok ? 1 : summary.exit_code();
}
