// Fig. 7 — Energy consumption of the EBLCs in serial mode across the four
// data sets and the three Table-I CPUs. Each cell is compression energy +
// decompression energy (the paper's stacked bars), derived from really
// measured kernel runtimes dilated onto each platform's power model.
//
// The cpu×dataset×bound×codec grid (3×4×5×5 = 300 cells) runs as a sweep
// on the shared executor; every platform's energy derives from the same
// memoized host measurement (cells sharing a kernel key block on one
// measurement), so tables stream per (CPU, dataset) while the grid is
// still running and --verify is exact even for the measured columns.
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Fig. 7", "Serial comp+decomp energy across data sets and CPUs", env);

  struct Cell {
    std::string cpu;
    std::string generation;
    std::string dataset;
    double eb = 0.0;
    std::string codec;
  };
  const std::vector<std::string>& codecs = eblc_names();
  const std::size_t per_row = codecs.size();
  const std::size_t per_dataset = bench::paper_bounds().size() * per_row;
  const std::size_t per_cpu = bench::paper_datasets().size() * per_dataset;
  std::vector<Cell> cells;
  for (const std::string& dataset : bench::paper_datasets())
    bench::bench_dataset(dataset, env);  // generate before the cells race
  for (const CpuModel& cpu : cpu_catalog())
    for (const std::string& dataset : bench::paper_datasets())
      for (double eb : bench::paper_bounds())
        for (const std::string& codec : codecs)
          cells.push_back({cpu.name, cpu.generation, dataset, eb, codec});

  struct CellOut {
    bool supported = false;
    CompressionRecord rec;
  };
  auto eval = [&](const Cell& cell, SweepCellContext& ctx) {
    const Field& f = bench::bench_dataset(cell.dataset, env);
    CompressOptions opt;
    opt.error_bound = cell.eb;
    CellOut out;
    out.supported = compressor(cell.codec).supports(f, opt);
    if (!out.supported) return out;
    PipelineConfig cfg;
    cfg.codec = cell.codec;
    cfg.error_bound = cell.eb;
    cfg.cpu = cell.cpu;
    out.rec = bench::measure_compression(f, cfg, env, &ctx);
    return out;
  };
  auto render = [](const Cell&, const CellOut& out) {
    return std::vector<std::string>{
        out.supported ? fmt_double(out.rec.compress_j, 1) + "/" +
                            fmt_double(out.rec.decompress_j, 1)
                      : "n/a"};
  };

  std::optional<bench::StreamedTable> table;
  std::vector<std::string> row;
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell& cell, std::size_t index,
          const std::vector<std::string>& fragment) {
        if (index % per_cpu == 0)
          std::printf("\n=== %s (%s) ===\n", cell.cpu.c_str(),
                      cell.generation.c_str());
        if (index % per_dataset == 0) {
          if (table) table->finish();
          std::printf("\n(%s)\n", cell.dataset.c_str());
          table.emplace(std::vector<std::string>{
              "REL Bound", "SZ2 c/d (J)", "SZ3 c/d (J)", "ZFP c/d (J)",
              "QoZ c/d (J)", "SZx c/d (J)"});
        }
        if (index % per_row == 0) row = {fmt_error_bound(cell.eb)};
        row.insert(row.end(), fragment.begin(), fragment.end());
        if (row.size() == 1 + per_row) table->add_row(row);
      });
  if (table) table->finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nExpected shape (paper Fig. 7): energy rises as bounds tighten\n"
      "(marked between 1E-03 and 1E-05); SZx lowest energy, ZFP\n"
      "competitive on CESM; larger data sets (HACC, S3D) cost the most;\n"
      "the Sapphire Rapids MAX 9480 is the most energy-efficient platform\n"
      "and the Cascade Lake 8260M the least.\n");
  return summary.exit_code();
}
