// Fig. 7 — Energy consumption of the EBLCs in serial mode across the four
// data sets and the three Table-I CPUs. Each cell is compression energy +
// decompression energy (the paper's stacked bars), derived from really
// measured kernel runtimes dilated onto each platform's power model.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Fig. 7", "Serial comp+decomp energy across data sets and CPUs", env);

  // Measure each (dataset, codec, bound) once on the host; every platform's
  // energy derives from the same measured kernel times.
  for (const CpuModel& cpu : cpu_catalog()) {
    std::printf("\n=== %s (%s) ===\n", cpu.name.c_str(),
                cpu.generation.c_str());
    for (const std::string& dataset : bench::paper_datasets()) {
      const Field& f = bench::bench_dataset(dataset, env);
      std::printf("\n(%s)\n", dataset.c_str());
      TextTable t({"REL Bound", "SZ2 c/d (J)", "SZ3 c/d (J)", "ZFP c/d (J)",
                   "QoZ c/d (J)", "SZx c/d (J)"});
      for (double eb : bench::paper_bounds()) {
        std::vector<std::string> row = {fmt_error_bound(eb)};
        for (const std::string& codec : eblc_names()) {
          CompressOptions opt;
          opt.error_bound = eb;
          if (!compressor(codec).supports(f, opt)) {
            row.push_back("n/a");
            continue;
          }
          PipelineConfig cfg;
          cfg.codec = codec;
          cfg.error_bound = eb;
          cfg.cpu = cpu.name;
          const auto rec = bench::measure_compression(f, cfg, env);
          row.push_back(fmt_double(rec.compress_j, 1) + "/" +
                        fmt_double(rec.decompress_j, 1));
        }
        t.add_row(row);
      }
      t.print(std::cout);
    }
  }

  std::printf(
      "\nExpected shape (paper Fig. 7): energy rises as bounds tighten\n"
      "(marked between 1E-03 and 1E-05); SZx lowest energy, ZFP\n"
      "competitive on CESM; larger data sets (HACC, S3D) cost the most;\n"
      "the Sapphire Rapids MAX 9480 is the most energy-efficient platform\n"
      "and the Cascade Lake 8260M the least.\n");
  return 0;
}
