// Ablation — QoZ anchor-grid density and level-wise bound tightening
// (DESIGN.md §5): anchor stride x level gamma sweep, showing the
// quality/ratio trade-off behind QoZ's design.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/interp_core.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Ablation", "QoZ anchor stride x level gamma (NYX, REL 1e-3)", env);

  const Field& f = bench::bench_dataset("NYX", env);
  const double abs_eb = eb * f.value_range().span();

  TextTable t({"anchor stride", "gamma", "ratio", "PSNR (dB)",
               "max rel err"});
  for (std::size_t stride : {std::size_t{16}, std::size_t{64},
                             std::size_t{256}, std::size_t{0}}) {
    for (double gamma : {1.0, 0.7, 0.5}) {
      InterpConfig config;
      config.anchor_stride = stride;
      config.level_gamma = gamma;
      const InterpEncoding enc = interp_compress(f, abs_eb, config);
      const Bytes payload = interp_payload_encode(config, enc);

      BlobHeader header;
      header.codec = "QoZ";
      header.dtype = f.dtype();
      header.dims = f.shape().dims_vector();
      header.abs_error_bound = abs_eb;
      const Field recon = interp_decompress(header, config, enc.codes,
                                            enc.anchors, enc.unpred);
      const auto st = compute_error_stats(f, recon);
      t.add_row({stride == 0 ? "auto" : std::to_string(stride),
                 fmt_double(gamma, 1),
                 fmt_double(compression_ratio(f.size_bytes(),
                                              payload.size()),
                            2),
                 fmt_double(st.psnr_db, 2),
                 fmt_double(st.max_rel_error, 8)});
    }
    t.add_rule();
  }
  t.print(std::cout);

  std::printf(
      "\nReading: tighter coarse-level bounds (gamma < 1) raise PSNR at a\n"
      "small ratio cost; denser anchors stop error propagation the same\n"
      "way but pay exact-storage overhead — the two QoZ levers.\n");
  return 0;
}
