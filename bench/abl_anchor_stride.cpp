// Ablation — QoZ anchor-grid density and level-wise bound tightening
// (DESIGN.md §5): anchor stride x level gamma sweep, showing the
// quality/ratio trade-off behind QoZ's design.
//
// The stride×gamma grid (4×3 = 12 cells) runs as a sweep on the shared
// executor; rows stream as cells resolve. Every cell is a pure function
// of its inputs, so --verify compares all columns bit-for-bit.
#include <cstdio>

#include "bench_util.h"
#include "compressors/interp_core.h"
#include "metrics/error_stats.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Ablation", "QoZ anchor stride x level gamma (NYX, REL 1e-3)", env);

  const Field& f = bench::bench_dataset("NYX", env);
  const double abs_eb = eb * f.value_range().span();

  struct Cell {
    std::size_t stride = 0;
    double gamma = 1.0;
  };
  const std::vector<double> gammas = {1.0, 0.7, 0.5};
  std::vector<Cell> cells;
  for (std::size_t stride : {std::size_t{16}, std::size_t{64},
                             std::size_t{256}, std::size_t{0}})
    for (double gamma : gammas) cells.push_back({stride, gamma});

  struct CellOut {
    double ratio = 0.0;
    ErrorStats stats;
  };
  auto eval = [&](const Cell& cell, SweepCellContext&) {
    InterpConfig config;
    config.anchor_stride = cell.stride;
    config.level_gamma = cell.gamma;
    const InterpEncoding enc = interp_compress(f, abs_eb, config);
    const Bytes payload = interp_payload_encode(config, enc);

    BlobHeader header;
    header.codec = "QoZ";
    header.dtype = f.dtype();
    header.dims = f.shape().dims_vector();
    header.abs_error_bound = abs_eb;
    const Field recon = interp_decompress(header, config, enc.codes,
                                          enc.anchors, enc.unpred);
    CellOut out;
    out.ratio = compression_ratio(f.size_bytes(), payload.size());
    out.stats = compute_error_stats(f, recon);
    return out;
  };
  auto render = [](const Cell& cell, const CellOut& out) {
    return std::vector<std::string>{
        cell.stride == 0 ? "auto" : std::to_string(cell.stride),
        fmt_double(cell.gamma, 1), fmt_double(out.ratio, 2),
        fmt_double(out.stats.psnr_db, 2),
        fmt_double(out.stats.max_rel_error, 8)};
  };

  bench::StreamedTable table(
      {"anchor stride", "gamma", "ratio", "PSNR (dB)", "max rel err"});
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell&, std::size_t index,
          const std::vector<std::string>& fragment) {
        table.add_row(fragment);
        if ((index + 1) % gammas.size() == 0) table.add_rule();
      });
  table.finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nReading: tighter coarse-level bounds (gamma < 1) raise PSNR at a\n"
      "small ratio cost; denser anchors stop error propagation the same\n"
      "way but pay exact-storage overhead — the two QoZ levers.\n");
  return summary.exit_code();
}
