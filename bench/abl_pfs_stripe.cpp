// Ablation — PFS striping and the Fig. 12 contention knee (DESIGN.md §5.4):
// sweeps stripe_count and client counts to show the 256->512-core jump of
// uncompressed I/O is robust across striping choices.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "io/pfs.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const std::size_t bytes =
      static_cast<std::size_t>(args.get_int("mb", 32)) << 20;
  bench::print_bench_header(
      "Ablation", "PFS stripe count vs contention (per-client write time)",
      env);

  const std::vector<int> stripe_counts = {1, 4, 8, 16};
  const std::vector<int> clients = {1, 16, 64, 128, 256, 512};

  TextTable t({"stripe_count", "1 cli (s)", "16 (s)", "64 (s)", "128 (s)",
               "256 (s)", "512 (s)", "knee 512/256"});
  for (int sc : stripe_counts) {
    PfsConfig cfg;
    cfg.stripe_count = sc;
    PfsSimulator pfs(cfg);
    std::vector<std::string> row = {std::to_string(sc)};
    double t256 = 0, t512 = 0;
    for (int c : clients) {
      const double s = pfs.transfer_seconds(bytes, c);
      row.push_back(fmt_double(s, 4));
      if (c == 256) t256 = s;
      if (c == 512) t512 = s;
    }
    row.push_back(fmt_double(t512 / t256, 2));
    t.add_row(row);
  }
  t.print(std::cout);

  std::printf(
      "\nReading: once aggregate demand exceeds OST capacity (hundreds of\n"
      "clients), per-client time doubles from 256 to 512 clients for every\n"
      "stripe width — the Fig. 12 knee is a capacity effect, not a\n"
      "striping artifact. Wider stripes only help the low-contention end.\n");
  return 0;
}
