// Ablation — PFS striping and the Fig. 12 contention knee (DESIGN.md §5.4):
// sweeps stripe_count and client counts to show the 256->512-core jump of
// uncompressed I/O is robust across striping choices.
//
// Each stripe count is one sweep cell (its private PfsSimulator evaluates
// all client counts); rows stream as cells resolve. The contention model
// is a pure function of its inputs, so --verify compares every column
// bit-for-bit.
#include <cstdio>

#include "bench_util.h"
#include "io/pfs.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const std::size_t bytes =
      static_cast<std::size_t>(args.get_int("mb", 32)) << 20;
  bench::print_bench_header(
      "Ablation", "PFS stripe count vs contention (per-client write time)",
      env);

  const std::vector<int> clients = {1, 16, 64, 128, 256, 512};
  std::vector<int> stripe_counts = {1, 4, 8, 16};

  auto eval = [&](const int& stripe_count, SweepCellContext&) {
    PfsConfig cfg;
    cfg.stripe_count = stripe_count;
    PfsSimulator pfs(cfg);
    std::vector<double> seconds;
    seconds.reserve(clients.size());
    for (int c : clients) seconds.push_back(pfs.transfer_seconds(bytes, c));
    return seconds;
  };
  auto render = [&](const int& stripe_count,
                    const std::vector<double>& seconds) {
    std::vector<std::string> row = {std::to_string(stripe_count)};
    double t256 = 0.0, t512 = 0.0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      row.push_back(fmt_double(seconds[i], 4));
      if (clients[i] == 256) t256 = seconds[i];
      if (clients[i] == 512) t512 = seconds[i];
    }
    row.push_back(fmt_double(t512 / t256, 2));
    return row;
  };

  bench::StreamedTable table({"stripe_count", "1 cli (s)", "16 (s)",
                              "64 (s)", "128 (s)", "256 (s)", "512 (s)",
                              "knee 512/256"});
  const auto summary = bench::run_grid_bench(
      std::move(stripe_counts), env, eval, render,
      [&](const int&, std::size_t, const std::vector<std::string>& fragment) {
        table.add_row(fragment);
      });
  table.finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nReading: once aggregate demand exceeds OST capacity (hundreds of\n"
      "clients), per-client time doubles from 256 to 512 clients for every\n"
      "stripe width — the Fig. 12 knee is a capacity effect, not a\n"
      "striping artifact. Wider stripes only help the low-contention end.\n");
  return summary.exit_code();
}
