// Ablation — the composed-codec grid (compressors/composed.h): every
// predictor x quantizer x encoder combination run as one sweep over a
// Table-II data set, quantifying what each stage choice buys. This is the
// component framework's bench-map entry: the same cells advise_compression
// trials when handed composed codec names, here rendered as a full table.
//
// The kNumPredictors x kNumQuantizers x kNumEncoders grid (75 cells) runs
// on the shared executor; rows stream as cells resolve. --verify re-runs
// the grid serially and compares the deterministic columns (ratio, PSNR,
// sizes) bit-for-bit; the host-timing columns are excluded — wall clock is
// run-to-run noise. measure_compression memoizes per cell key, so the
// verify rerun re-checks rendering, not kernels.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "compressors/composed.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const std::string dataset = args.get("dataset", "CESM");
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Ablation", "Composed codecs: predictor x quantizer x encoder grid",
      env);
  std::printf("dataset=%s  REL=%s  (%d x %d x %d = %zu configurations)\n\n",
              dataset.c_str(), fmt_error_bound(eb).c_str(), kNumPredictors,
              kNumQuantizers, kNumEncoders, all_composed_configs().size());

  bench::bench_dataset(dataset, env);  // generate before the cells race

  auto eval = [&](const ComposedConfig& cell, SweepCellContext& ctx) {
    const Field& f = bench::bench_dataset(dataset, env);
    PipelineConfig config;
    config.codec = composed_codec_name(cell);
    config.error_bound = eb;
    return bench::measure_compression(f, config, env, &ctx);
  };
  auto render = [](const ComposedConfig& cell, const CompressionRecord& r) {
    return std::vector<std::string>{
        std::string(predictor_name(cell.predictor)),
        std::string(quantizer_name(cell.quantizer)),
        std::string(encoder_name(cell.encoder)),
        fmt_double(r.ratio, 2),
        fmt_double(r.quality.psnr_db, 2),
        fmt_double(r.compressed_bytes / 1e6, 3),
        fmt_double(r.host_compress_s, 3),
        fmt_double(r.host_decompress_s, 3)};
  };
  // Columns 0..5 are pure functions of the cell; 6..7 are host timings.
  const std::size_t kDeterministicCols = 6;

  bench::StreamedTable table({"Predictor", "Quantizer", "Encoder", "CR",
                              "PSNR (dB)", "size (MB)", "comp t(s)",
                              "dec t(s)"});
  const auto summary = bench::run_grid_bench(
      all_composed_configs(), env, eval, render,
      [&](const ComposedConfig&, std::size_t,
          const std::vector<std::string>& fragment) {
        table.add_row(fragment);
      },
      [&](const ComposedConfig&, const std::vector<std::string>& fragment) {
        return bench::detail::join_fragment(
            {fragment.begin(), fragment.begin() + kDeterministicCols});
      });
  table.finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nReading: the ratio spread is predictor-dominated (interp-cubic and\n"
      "lorenzo1 bracket the grid), the encoder stage separates raw from the\n"
      "entropy-coded variants by the code-stream entropy, and the quantizer\n"
      "choice is ratio-neutral between the two linear variants — the recip\n"
      "path is a pure speedup, locked to the divide's codes at ties.\n");
  return summary.exit_code();
}
