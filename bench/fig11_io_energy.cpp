// Fig. 11 — Energy of writing each data set to the Lustre-class PFS with
// HDF5 and NetCDF, post-compression for every EBLC and bound, against the
// uncompressed "Original" baseline. Intel Xeon CPU MAX 9480.
//
// Also prints the Sec. VII headline: the S3D/SZ2/1e-3 I/O energy-reduction
// factor (262.5x in the paper).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "core/tradeoff.h"
#include "energy/powercap_monitor.h"
#include "io/io_tool.h"

using namespace eblcio;

namespace {

struct WriteEnergy {
  double seconds = 0.0;
  double joules = 0.0;
};

WriteEnergy energy_of(const IoCost& cost, const CpuModel& cpu) {
  PowercapMonitor mon(cpu);
  const auto prep = mon.record_compute("prep", cost.prep_seconds, 1);
  const auto io = mon.record_io("io", cost.transfer_seconds);
  return {prep.seconds + io.seconds, prep.joules + io.joules};
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Fig. 11", "Write energy to PFS: compressed vs Original (MAX 9480)",
      env);

  const CpuModel& cpu = cpu_model("9480");
  double headline_reduction = 0.0;

  for (const std::string& io_name : io_tool_names()) {
    IoTool& tool = io_tool(io_name);
    std::printf("\n=== %s ===\n", io_name.c_str());
    for (const std::string& dataset : bench::paper_datasets()) {
      const Field& f = bench::bench_dataset(dataset, env);
      PfsSimulator pfs;

      const WriteEnergy orig = energy_of(
          tool.write_field(pfs, "/pfs/" + dataset + ".orig", f), cpu);

      std::printf("\n(%s)  Original: %s J (%s)\n", dataset.c_str(),
                  fmt_double(orig.joules, 3).c_str(),
                  fmt_seconds(orig.seconds).c_str());
      TextTable t({"REL Bound", "SZ2 (J)", "SZ3 (J)", "ZFP (J)", "QoZ (J)",
                   "SZx (J)"});
      for (double eb : bench::paper_bounds()) {
        std::vector<std::string> row = {fmt_error_bound(eb)};
        for (const std::string& codec : eblc_names()) {
          CompressOptions opt;
          opt.error_bound = eb;
          if (!compressor(codec).supports(f, opt)) {
            row.push_back("n/a");
            continue;
          }
          const Bytes blob = compressor(codec).compress(f, opt);
          const WriteEnergy we = energy_of(
              tool.write_blob(pfs, "/pfs/" + dataset + "." + codec,
                              dataset, blob),
              cpu);
          row.push_back(fmt_double(we.joules, 3));
          if (io_name == "HDF5" && dataset == "S3D" && codec == "SZ2" &&
              eb == 1e-3) {
            headline_reduction = orig.joules / we.joules;
          }
        }
        t.add_row(row);
      }
      t.print(std::cout);
    }
  }

  // Streamed cells: the same write, but pushed through the container's
  // chunked-dataset API on the fetch→decompress/compress→write pipelines,
  // so slab i compresses while the container writes slab i-1 (and, on
  // restart, the PFS fetch of slab i overlaps decompression of slab i-1).
  std::printf("\n=== streamed cells (chunk API, SZ3, REL 1E-03) ===\n");
  TextTable st({"IoTool", "Dataset", "write strm (s)", "write serial (s)",
                "read strm (s)", "read serial (s)", "overlap saved (s)"});
  for (const std::string& io_name : io_tool_names()) {
    for (const std::string& dataset : bench::paper_datasets()) {
      const Field& f = bench::bench_dataset(dataset, env);
      PfsSimulator pfs;
      PipelineConfig cfg;
      cfg.codec = "SZ3";
      cfg.error_bound = 1e-3;
      cfg.cpu = cpu.name;
      cfg.io_library = io_name;
      const auto wrec = run_streamed_compress_write(f, cfg, pfs);
      const auto rrec = run_streamed_read(pfs, wrec.path, cfg);
      st.add_row({io_name, dataset, fmt_double(wrec.streamed_total_s, 4),
                  fmt_double(wrec.serial_total_s, 4),
                  fmt_double(rrec.streamed_total_s, 4),
                  fmt_double(rrec.serial_total_s, 4),
                  fmt_double(wrec.overlap_saving_s() +
                                 rrec.overlap_saving_s(), 4)});
    }
    st.add_rule();
  }
  st.print(std::cout);

  std::printf(
      "\nSec. VII headline — S3D, SZ2, REL 1E-03, HDF5: I/O energy\n"
      "reduction %.1fx vs uncompressed (paper reports 262.5x at paper-size\n"
      "S3D; the factor grows with --scale as transfer dominates latency).\n",
      headline_reduction);
  std::printf(
      "\nExpected shape (paper Fig. 11): compression cuts write energy for\n"
      "every cell; savings are largest for big data sets (>=1 order of\n"
      "magnitude for S3D) and smallest for CESM at tight bounds; energy\n"
      "rises as bounds tighten; HDF5 beats NetCDF throughout (paper: 4.3x\n"
      "for HACC/SZx/1E-03).\n");
  return 0;
}
