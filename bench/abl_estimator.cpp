// Ablation/validation — the zPerf-class ratio estimator (core/estimator)
// against the measured ratios, across data sets, codecs and bounds: the
// gray-box prediction a capacity planner would use instead of compressing
// the archive to size it.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "core/estimator.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Validation", "Predicted vs measured compression ratio (zPerf role)",
      env);

  TextTable t({"Dataset", "Codec", "REL", "predicted", "measured",
               "pred/meas", "est time (s)", "comp time (s)"});
  double worst = 1.0, sum_log_err = 0.0;
  int cells = 0;
  for (const std::string& dataset : {"CESM", "NYX", "S3D"}) {
    const Field& f = bench::bench_dataset(dataset, env);
    for (const std::string& codec : {"SZ3", "ZFP", "SZx"}) {
      for (double eb : {1e-2, 1e-4}) {
        RatioEstimate est;
        const double t_est =
            timed_s([&] { est = estimate_ratio(f, codec, eb); });

        CompressOptions o;
        o.error_bound = eb;
        Bytes blob;
        const double t_comp =
            timed_s([&] { blob = compressor(codec).compress(f, o); });
        const double actual = static_cast<double>(f.size_bytes()) /
                              static_cast<double>(blob.size());
        const double rel = est.predicted_ratio / actual;
        worst = std::max(worst, std::max(rel, 1.0 / rel));
        sum_log_err += std::fabs(std::log2(rel));
        ++cells;

        t.add_row({dataset, codec, fmt_error_bound(eb),
                   fmt_double(est.predicted_ratio, 1), fmt_double(actual, 1),
                   fmt_double(rel, 2), fmt_double(t_est, 4),
                   fmt_double(t_comp, 3)});
      }
    }
    t.add_rule();
  }
  t.print(std::cout);

  std::printf(
      "\nSummary: geometric-mean error %.2fx, worst cell %.2fx; estimation\n"
      "runs orders of magnitude faster than compressing (sampled, size-\n"
      "independent) — the gray-box regime of the paper's refs. [39]/[51].\n",
      std::exp2(sum_log_err / std::max(cells, 1)), worst);
  return 0;
}
