// Ablation/validation — the zPerf-class ratio estimator (core/estimator)
// against the measured ratios, across data sets, codecs and bounds: the
// gray-box prediction a capacity planner would use instead of compressing
// the archive to size it.
//
// The dataset×codec×bound grid runs as a sweep on the shared executor
// (core/sweep.h): every cell estimates from a per-dataset RatioSample
// taken once up front (the pre-screen regime) and then really compresses
// for the measured baseline; rows stream into the table in deterministic
// domain order. --serial runs the identical cells in order for A/B wall-
// clock comparison.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "core/estimator.h"
#include "core/sweep.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const bool serial = args.get_bool("serial", false);
  bench::print_bench_header(
      "Validation", "Predicted vs measured compression ratio (zPerf role)",
      env);

  struct GridCell {
    std::string dataset;
    std::string codec;
    double eb = 0.0;
  };
  std::vector<GridCell> cells;
  std::map<std::string, const Field*> fields;
  std::map<std::string, RatioSample> samples;
  for (const std::string& dataset : {"CESM", "NYX", "S3D"}) {
    const Field& f = bench::bench_dataset(dataset, env);
    fields[dataset] = &f;
    samples[dataset] = RatioSample::take(f);  // once per dataset, shared
    for (const std::string& codec : {"SZ3", "ZFP", "SZx"})
      for (double eb : {1e-2, 1e-4}) cells.push_back({dataset, codec, eb});
  }

  struct CellResult {
    RatioEstimate est;
    double actual = 0.0;
    double t_est = 0.0;
    double t_comp = 0.0;
  };
  SweepOptions sweep;
  sweep.parallel = !serial;
  const auto report = sweep_grid(
      std::move(cells),
      [&](const GridCell& cell, SweepCellContext&) {
        CellResult r;
        r.t_est = timed_s(
            [&] { r.est = estimate_ratio(samples.at(cell.dataset), cell.codec,
                                         cell.eb); });
        CompressOptions o;
        o.error_bound = cell.eb;
        Bytes blob;
        const Field& f = *fields.at(cell.dataset);
        r.t_comp =
            timed_s([&] { blob = compressor(cell.codec).compress(f, o); });
        r.actual = static_cast<double>(f.size_bytes()) /
                   static_cast<double>(blob.size());
        return r;
      },
      sweep);
  report.rethrow_first_error();

  TextTable t({"Dataset", "Codec", "REL", "predicted", "measured",
               "pred/meas", "est time (s)", "comp time (s)"});
  double worst = 1.0, sum_log_err = 0.0;
  int ncells = 0;
  std::string last_dataset;
  for (const auto& cell : report.cells) {
    if (!last_dataset.empty() && cell.cell.dataset != last_dataset)
      t.add_rule();
    last_dataset = cell.cell.dataset;
    const CellResult& r = *cell.result;
    const double rel = r.est.predicted_ratio / r.actual;
    worst = std::max(worst, std::max(rel, 1.0 / rel));
    sum_log_err += std::fabs(std::log2(rel));
    ++ncells;
    t.add_row({cell.cell.dataset, cell.cell.codec,
               fmt_error_bound(cell.cell.eb),
               fmt_double(r.est.predicted_ratio, 1), fmt_double(r.actual, 1),
               fmt_double(rel, 2), fmt_double(r.t_est, 4),
               fmt_double(r.t_comp, 3)});
  }
  t.add_rule();
  t.print(std::cout);

  std::printf(
      "\nSummary: geometric-mean error %.2fx, worst cell %.2fx; %zu-cell\n"
      "grid swept in %.3f s wall (%.3f s summed cell time, %s).\n"
      "Estimation runs orders of magnitude faster than compressing\n"
      "(sampled, size-independent) — the gray-box regime of the paper's\n"
      "refs. [39]/[51].\n",
      std::exp2(sum_log_err / std::max(ncells, 1)), worst,
      report.stats.cells, report.stats.wall_s, report.stats.cell_seconds,
      serial ? "serial" : "parallel");
  return 0;
}
