// Ablation/validation — the zPerf-class ratio estimator (core/estimator)
// against the measured ratios, across data sets, codecs and bounds: the
// gray-box prediction a capacity planner would use instead of compressing
// the archive to size it.
//
// The dataset×codec×bound grid (3×3×2 = 18 cells) runs as a sweep on the
// shared executor via bench_util.h::run_grid_bench: every cell estimates
// from a per-dataset RatioSample taken once up front (the pre-screen
// regime) and then really compresses for the measured baseline; rows
// stream in deterministic domain order. --verify compares the
// deterministic columns (prediction, measurement, their ratio)
// bit-for-bit against a serial rerun; the two timing columns are
// excluded — wall clock is run-to-run noise.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "core/estimator.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Validation", "Predicted vs measured compression ratio (zPerf role)",
      env);

  struct GridCell {
    std::string dataset;
    std::string codec;
    double eb = 0.0;
  };
  const std::size_t per_dataset = 3 * 2;  // codecs × bounds
  std::vector<GridCell> cells;
  std::map<std::string, const Field*> fields;
  std::map<std::string, RatioSample> samples;
  for (const std::string& dataset : {"CESM", "NYX", "S3D"}) {
    const Field& f = bench::bench_dataset(dataset, env);
    fields[dataset] = &f;
    samples[dataset] = RatioSample::take(f);  // once per dataset, shared
    for (const std::string& codec : {"SZ3", "ZFP", "SZx"})
      for (double eb : {1e-2, 1e-4}) cells.push_back({dataset, codec, eb});
  }

  struct CellResult {
    RatioEstimate est;
    double actual = 0.0;
    double t_est = 0.0;
    double t_comp = 0.0;
  };
  // Raw results land here (indexed by cell) for the accuracy summary; the
  // verify rerun overwrites only with identical deterministic values.
  std::vector<CellResult> results(cells.size());
  auto eval = [&](const GridCell& cell, SweepCellContext& ctx) {
    CellResult r;
    r.t_est = timed_s(
        [&] { r.est = estimate_ratio(samples.at(cell.dataset), cell.codec,
                                     cell.eb); });
    CompressOptions o;
    o.error_bound = cell.eb;
    Bytes blob;
    const Field& f = *fields.at(cell.dataset);
    r.t_comp =
        timed_s([&] { blob = compressor(cell.codec).compress(f, o); });
    r.actual = static_cast<double>(f.size_bytes()) /
               static_cast<double>(blob.size());
    results[ctx.index()] = r;
    return r;
  };
  auto render = [](const GridCell& cell, const CellResult& r) {
    return std::vector<std::string>{
        cell.dataset,
        cell.codec,
        fmt_error_bound(cell.eb),
        fmt_double(r.est.predicted_ratio, 1),
        fmt_double(r.actual, 1),
        fmt_double(r.est.predicted_ratio / r.actual, 2),
        fmt_double(r.t_est, 4),
        fmt_double(r.t_comp, 3)};
  };
  // Columns 0..5 are pure functions of the cell; 6..7 are host timings.
  const std::size_t kDeterministicCols = 6;

  bench::StreamedTable table({"Dataset", "Codec", "REL", "predicted",
                              "measured", "pred/meas", "est time (s)",
                              "comp time (s)"});
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const GridCell&, std::size_t index,
          const std::vector<std::string>& fragment) {
        table.add_row(fragment);
        if ((index + 1) % per_dataset == 0) table.add_rule();
      },
      [&](const GridCell&, const std::vector<std::string>& fragment) {
        return bench::detail::join_fragment(
            {fragment.begin(), fragment.begin() + kDeterministicCols});
      });
  table.finish();
  bench::print_grid_summary(summary);

  double worst = 1.0, sum_log_err = 0.0;
  for (const CellResult& r : results) {
    const double rel = r.est.predicted_ratio / r.actual;
    worst = std::max(worst, std::max(rel, 1.0 / rel));
    sum_log_err += std::fabs(std::log2(rel));
  }
  std::printf(
      "\nSummary: geometric-mean error %.2fx, worst cell %.2fx over %zu\n"
      "cells. Estimation runs orders of magnitude faster than compressing\n"
      "(sampled, size-independent) — the gray-box regime of the paper's\n"
      "refs. [39]/[51].\n",
      std::exp2(sum_log_err /
                std::max<std::size_t>(results.size(), 1)),
      worst, results.size());
  return summary.exit_code();
}
