// Table II — Data Sets for Benchmarking Lossy Compressors: paper dimensions
// and storage sizes, plus the synthetic working size this run would use.
#include <cstdio>
#include <iostream>

#include "bench_util.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header("Table II",
                            "Data Sets for Benchmarking Lossy Compressors",
                            env);

  TextTable t({"Data Set", "Dimensions (paper)", "Storage Size (paper)",
               "Precision", "Working dims (this run)", "Working size"});
  for (const std::string& name : bench::paper_datasets()) {
    const DatasetSpec& spec = dataset_spec(name);
    std::size_t paper_elems = 1;
    for (auto d : spec.paper_dims) paper_elems *= d;
    const std::size_t paper_bytes = paper_elems * dtype_size(spec.dtype);

    const double working_scale =
        std::min(1.0, env.scale / spec.default_shrink);
    const auto wdims = scaled_dims(spec, working_scale);
    std::size_t welems = 1;
    for (auto d : wdims) welems *= d;

    t.add_row({spec.name, fmt_dims(spec.paper_dims), human_bytes(paper_bytes),
               spec.dtype == DType::kFloat32 ? "Float" : "Double",
               fmt_dims(wdims), human_bytes(welems * dtype_size(spec.dtype))});
  }
  t.print(std::cout);

  std::printf(
      "\nPaper columns match Table II exactly (CESM 673.9MB, HACC 1046.9MB,\n"
      "NYX 536.9MB, S3D 10490.4MB). Working sizes are the seeded synthetic\n"
      "stand-ins this run compresses; use --scale to grow toward paper "
      "size.\n");
  return 0;
}
