// Fig. 13 — Serial comp+decomp energy for NYX inflated by 1..5x per
// dimension (cubic growth in bytes), Intel Xeon Platinum 8260M, REL 1e-3.
// Reproduces the paper's inflation methodology: multilinear upsampling with
// sub-grid dither preserves the field's statistical character.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "data/inflate.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  const int base = args.get_int("base", 48);
  const int max_factor = args.get_int("max-factor", 5);
  bench::print_bench_header(
      "Fig. 13", "Serial energy vs inflated NYX size (Platinum 8260M)", env);

  const Field base_field = generate_dataset_dims(
      "NYX",
      {static_cast<std::size_t>(base), static_cast<std::size_t>(base),
       static_cast<std::size_t>(base)},
      env.seed);

  TextTable t({"Factor", "Size", "SZ2 c/d (J)", "SZ3 c/d (J)", "ZFP c/d (J)",
               "QoZ c/d (J)", "SZx c/d (J)"});
  std::vector<double> sz3_j_per_byte;
  for (int factor = 1; factor <= max_factor; ++factor) {
    const Field f = inflate_field(base_field, factor);
    std::vector<std::string> row = {std::to_string(factor) + "x",
                                    human_bytes(f.size_bytes())};
    for (const std::string& codec : eblc_names()) {
      PipelineConfig cfg;
      cfg.codec = codec;
      cfg.error_bound = eb;
      cfg.cpu = "8260M";
      // No cache reuse across factors: field names match but dims differ,
      // which the memo key includes.
      const auto rec = bench::measure_compression(f, cfg, env);
      row.push_back(fmt_double(rec.compress_j, 1) + "/" +
                    fmt_double(rec.decompress_j, 1));
      if (codec == "SZ3")
        sz3_j_per_byte.push_back(rec.total_j() /
                                 static_cast<double>(f.size_bytes()));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  if (sz3_j_per_byte.size() >= 2) {
    std::printf(
        "\nThroughput check: SZ3 energy per byte stays ~constant across\n"
        "sizes (%.3g -> %.3g J/MB), i.e. energy scales ~linearly with data\n"
        "size — the paper's Fig. 13 conclusion.\n",
        sz3_j_per_byte.front() * 1e6, sz3_j_per_byte.back() * 1e6);
  }
  return 0;
}
