// Google-benchmark micro-kernels for the shared executor: dispatch
// overhead, parallel_for fan-out, channel hand-off, and the streaming
// compress→write pipeline against its serial schedule.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "core/pipeline.h"
#include "core/sweep.h"
#include "data/dataset.h"
#include "io/pfs.h"
#include "parallel/executor.h"

namespace {

using namespace eblcio;

// Round-trip latency of submitting one empty task and waiting for it —
// the floor every parallel site pays per task.
void BM_DispatchSingleTask(benchmark::State& state) {
  for (auto _ : state) {
    TaskGroup group;
    group.run([] {});
    group.wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchSingleTask);

// Amortized dispatch cost with a full batch in flight.
void BM_DispatchBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<int> count{0};
    TaskGroup group;
    for (int i = 0; i < n; ++i) group.run([&] { count.fetch_add(1); });
    group.wait();
    benchmark::DoNotOptimize(count.load());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DispatchBatch)->Arg(16)->Arg(256)->Arg(1024);

void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  std::vector<double> out(n);
  for (auto _ : state) {
    parallel_for(n, static_cast<int>(state.range(0)), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelFor)->Arg(1)->Arg(4)->Arg(16);

// Producer/consumer hand-off through the bounded channel (the streaming
// pipeline's coupling cost).
void BM_ChannelHandoff(benchmark::State& state) {
  const int n = 1024;
  for (auto _ : state) {
    BoundedChannel<int> ch(2);
    TaskGroup group;
    group.run([&] {
      for (int i = 0; i < n; ++i) ch.push(i);
      ch.close();
    });
    long long sum = 0;
    while (auto v = ch.pop()) sum += *v;
    group.wait();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelHandoff);

// Steal-path pressure — the datapoint for randomized victim selection.
// One pool task floods its own deque with tiny subtasks, so every other
// worker must steal everything it runs; before the randomized starting
// slot, all thieves serialized on the lowest-numbered victim's deque lock.
// Reported counter: steals per iteration actually taken from peer deques.
void BM_StealChurn(benchmark::State& state) {
  Executor ex(4);
  const int n = 4096;
  const auto before = ex.stats();
  for (auto _ : state) {
    std::atomic<int> count{0};
    TaskGroup outer(ex);
    outer.run([&] {
      TaskGroup inner(ex);
      for (int i = 0; i < n; ++i) inner.run([&] { count.fetch_add(1); });
      inner.wait();
    });
    outer.wait();
    benchmark::DoNotOptimize(count.load());
  }
  const auto after = ex.stats();
  state.counters["steals_per_iter"] = benchmark::Counter(
      static_cast<double>(after.steals - before.steals) /
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1)));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StealChurn);

// Same flood shape on a two-pod pool — the datapoint for locality-aware
// victim preference. Counters split the steal traffic into pod-local and
// cross-pod so the same-pod-first policy is visible: with ample local work
// the local share dominates, and the remote share is what the policy
// avoids paying on multi-node hosts.
void BM_StealChurnPodded(benchmark::State& state) {
  Executor ex(4, 4096, /*pods=*/2);
  const int n = 4096;
  const auto before = ex.stats();
  for (auto _ : state) {
    std::atomic<int> count{0};
    TaskGroup outer(ex);
    outer.run([&] {
      TaskGroup inner(ex);
      for (int i = 0; i < n; ++i) inner.run([&] { count.fetch_add(1); });
      inner.wait();
    });
    outer.wait();
    benchmark::DoNotOptimize(count.load());
  }
  const auto after = ex.stats();
  const double iters =
      static_cast<double>(std::max<std::int64_t>(state.iterations(), 1));
  state.counters["local_steals_per_iter"] = benchmark::Counter(
      static_cast<double>(after.pod_local_steals - before.pod_local_steals) /
      iters);
  state.counters["remote_steals_per_iter"] = benchmark::Counter(
      static_cast<double>(after.pod_remote_steals -
                          before.pod_remote_steals) /
      iters);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StealChurnPodded);

// Pod-hinted placement on a two-pod pool — the datapoint for the
// submit-side half of locality: each task carries the pod hint the chunked
// compressors derive from slab ownership, and the counters report how many
// hinted tasks actually ran inside their hinted pod versus were pulled
// cross-pod by stealing. With per-task work keeping the pods busy, the
// local share should stay near 1.0.
void BM_PodPlacement(benchmark::State& state) {
  Executor ex(4, 4096, /*pods=*/2);
  const int n = 2048;
  const auto before = ex.stats();
  for (auto _ : state) {
    std::atomic<unsigned> sink{0};
    TaskGroup group(ex);
    for (int i = 0; i < n; ++i)
      group.run(
          [&, i] {
            // Dependent LCG chain: unfoldable per-task work so the deques
            // hold depth and placement (not starvation stealing) decides
            // where tasks run.
            unsigned x = static_cast<unsigned>(i) + 1;
            for (int k = 0; k < 4096; ++k) x = x * 1664525u + 1013904223u;
            sink.fetch_add(x, std::memory_order_relaxed);
          },
          i % 2);
    group.wait();
    benchmark::DoNotOptimize(sink.load());
  }
  const auto after = ex.stats();
  const double local =
      static_cast<double>(after.placed_local - before.placed_local);
  const double remote =
      static_cast<double>(after.placed_remote - before.placed_remote);
  state.counters["pod_local_share"] =
      local + remote > 0 ? local / (local + remote) : 0.0;
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PodPlacement);

// The sweep engine over a 25-cell grid (the advisor's codec×bound shape):
// Arg(0) = serial reference path, Arg(1) = batched on the executor. The
// cells sleep rather than spin so the overlap win is visible even on
// heavily shared CI hosts.
void BM_SweepGrid25(benchmark::State& state) {
  const bool parallel = state.range(0) != 0;
  Executor ex(8);
  SweepOptions options;
  options.parallel = parallel;
  options.executor = &ex;
  std::vector<int> cells(25);
  std::iota(cells.begin(), cells.end(), 0);
  for (auto _ : state) {
    auto report = sweep_grid(
        cells,
        [](const int& cell, SweepCellContext&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          return cell * cell;
        },
        options);
    benchmark::DoNotOptimize(report.cells.size());
  }
  state.SetItemsProcessed(state.iterations() * 25);
}
BENCHMARK(BM_SweepGrid25)->Arg(0)->Arg(1);

const Field& stream_field() {
  static const Field f = generate_dataset_dims("NYX", {64, 64, 64}, 7);
  return f;
}

// Streaming vs serial write schedule. Reports the modeled speedup as a
// counter so `--benchmark_counters_tabular` shows the overlap win next to
// the host wall time.
void BM_StreamedCompressWrite(benchmark::State& state) {
  PipelineConfig config;
  config.codec = "SZ3";
  config.error_bound = 1e-3;
  StreamConfig stream;
  stream.slabs = static_cast<int>(state.range(0));
  double speedup = 0.0;
  for (auto _ : state) {
    PfsSimulator pfs;
    const auto rec =
        run_streamed_compress_write(stream_field(), config, pfs, stream);
    speedup = rec.serial_total_s / rec.streamed_total_s;
    benchmark::DoNotOptimize(rec.streamed_total_s);
  }
  state.counters["overlap_speedup"] = speedup;
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              stream_field().size_bytes()));
}
BENCHMARK(BM_StreamedCompressWrite)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
