// Fig. 1 — Lossless versus EBLC compression ratios for QMCPack, ISABEL,
// CESM-ATM and EXAFEL. Lossless: zstd-class, C-Blosc2, fpzip, FPC.
// EBLC: SZ2 and ZFP at a representative value-range relative bound.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "metrics/error_stats.h"

using namespace eblcio;

namespace {

double ratio_for(const Field& f, const std::string& codec,
                 const CompressOptions& opt) {
  return compression_ratio(f.size_bytes(),
                           compressor(codec).compress(f, opt).size());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eblc_bound = args.get_double("eb", 1e-2);
  bench::print_bench_header(
      "Fig. 1", "Lossless versus EBLC compression ratios (SDRBench sets)",
      env);

  const std::vector<std::string> datasets = {"QMCPack", "ISABEL", "CESM-ATM",
                                             "EXAFEL"};

  CompressOptions lossless;
  lossless.mode = BoundMode::kLossless;
  CompressOptions eblc;
  eblc.mode = BoundMode::kValueRangeRel;
  eblc.error_bound = eblc_bound;

  TextTable t({"Dataset", "zstd", "C-Blosc2", "fpzip", "FPC",
               "SZ2 (EBLC)", "ZFP (EBLC)"});
  for (const std::string& name : datasets) {
    const Field& f = bench::bench_dataset(name, env);
    t.add_row({name, fmt_double(ratio_for(f, "zstd", lossless), 2),
               fmt_double(ratio_for(f, "C-Blosc2", lossless), 2),
               fmt_double(ratio_for(f, "fpzip", lossless), 2),
               fmt_double(ratio_for(f, "FPC", lossless), 2),
               fmt_double(ratio_for(f, "SZ2", eblc), 2),
               fmt_double(ratio_for(f, "ZFP", eblc), 2)});
  }
  t.print(std::cout);

  std::printf(
      "\nExpected shape (paper Fig. 1): lossless compressors achieve\n"
      "insignificant ratios (~1-3x) on floating-point fields, while the\n"
      "EBLCs reach an order of magnitude or more at eb=%s.\n",
      fmt_error_bound(eblc_bound).c_str());
  return 0;
}
