// Fig. 5 — Runtime of compression + decompression across EBLCs, data sets
// and relative error bounds on the Intel Xeon CPU MAX 9480.
//
// The dataset×bound×codec grid (4×5×5 = 100 cells) runs as a sweep on the
// shared executor (bench_util.h::run_grid_bench over core/sweep.h); each
// table row streams out the moment its five codec cells have resolved.
// --serial evaluates the cells in order on this thread, --verify proves
// the batched rows bit-identical to a serial rerun (host measurements are
// memoized per cell key, so even timing columns are exact), and --reps
// engages the shared Sec. IV-C repetition protocol per cell.
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "compressors/compressor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Fig. 5",
      "Comp+decomp runtime vs REL bound, serial, Intel Xeon CPU Max 9480",
      env);

  struct Cell {
    std::string dataset;
    double eb = 0.0;
    std::string codec;
  };
  const std::vector<std::string>& codecs = eblc_names();
  const std::size_t per_row = codecs.size();
  const std::size_t per_dataset = bench::paper_bounds().size() * per_row;
  std::vector<Cell> cells;
  for (const std::string& dataset : bench::paper_datasets()) {
    bench::bench_dataset(dataset, env);  // generate before the cells race
    for (double eb : bench::paper_bounds())
      for (const std::string& codec : codecs) cells.push_back({dataset, eb, codec});
  }

  struct CellOut {
    bool supported = false;
    CompressionRecord rec;
  };
  auto eval = [&](const Cell& cell, SweepCellContext& ctx) {
    const Field& f = bench::bench_dataset(cell.dataset, env);
    CompressOptions opt;
    opt.error_bound = cell.eb;
    CellOut out;
    out.supported = compressor(cell.codec).supports(f, opt);
    if (!out.supported) return out;
    PipelineConfig cfg;
    cfg.codec = cell.codec;
    cfg.error_bound = cell.eb;
    cfg.cpu = "9480";
    out.rec = bench::measure_compression(f, cfg, env, &ctx);
    return out;
  };
  auto render = [](const Cell&, const CellOut& out) {
    return std::vector<std::string>{
        out.supported ? fmt_double(out.rec.total_s(), 3) : "n/a"};
  };

  std::optional<bench::StreamedTable> table;
  std::vector<std::string> row;
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell& cell, std::size_t index,
          const std::vector<std::string>& fragment) {
        if (index % per_dataset == 0) {
          if (table) table->finish();
          const Field& f = bench::bench_dataset(cell.dataset, env);
          std::printf("\n(%s)  %s, %s\n", cell.dataset.c_str(),
                      fmt_dims(f.shape().dims_vector()).c_str(),
                      human_bytes(f.size_bytes()).c_str());
          table.emplace(std::vector<std::string>{"REL Error Bound", "SZ2 (s)",
                                                 "SZ3 (s)", "ZFP (s)",
                                                 "QoZ (s)", "SZx (s)"});
        }
        if (index % per_row == 0) row = {fmt_error_bound(cell.eb)};
        row.insert(row.end(), fragment.begin(), fragment.end());
        if (row.size() == 1 + per_row) table->add_row(row);
      });
  if (table) table->finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nExpected shape (paper Fig. 5): runtime rises as the bound\n"
      "tightens, sharply between 1E-03 and 1E-05; SZx is the fastest\n"
      "compressor throughout; larger sets (HACC, S3D) cost the most.\n");
  return summary.exit_code();
}
