// Fig. 5 — Runtime of compression + decompression across EBLCs, data sets
// and relative error bounds on the Intel Xeon CPU MAX 9480.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Fig. 5",
      "Comp+decomp runtime vs REL bound, serial, Intel Xeon CPU Max 9480",
      env);

  for (const std::string& dataset : bench::paper_datasets()) {
    const Field& f = bench::bench_dataset(dataset, env);
    std::printf("\n(%s)  %s, %s\n", dataset.c_str(),
                fmt_dims(f.shape().dims_vector()).c_str(),
                human_bytes(f.size_bytes()).c_str());
    TextTable t({"REL Error Bound", "SZ2 (s)", "SZ3 (s)", "ZFP (s)",
                 "QoZ (s)", "SZx (s)"});
    for (double eb : bench::paper_bounds()) {
      std::vector<std::string> row = {fmt_error_bound(eb)};
      for (const std::string& codec : eblc_names()) {
        PipelineConfig cfg;
        cfg.codec = codec;
        cfg.error_bound = eb;
        cfg.cpu = "9480";
        CompressOptions opt;
        opt.error_bound = eb;
        if (!compressor(codec).supports(f, opt)) {
          row.push_back("n/a");
          continue;
        }
        const auto rec = bench::measure_compression(f, cfg, env);
        row.push_back(fmt_double(rec.total_s(), 3));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::printf(
      "\nExpected shape (paper Fig. 5): runtime rises as the bound\n"
      "tightens, sharply between 1E-03 and 1E-05; SZx is the fastest\n"
      "compressor throughout; larger sets (HACC, S3D) cost the most.\n");
  return 0;
}
