// Ablation — entropy-stage choices for the SZ-family code stream
// (DESIGN.md §5.1/§5.2): raw 16-bit codes vs Huffman vs Huffman + the
// deflate-class lossless backend ("Huffman + Zstd" in the papers).
// Quantifies what each stage buys per data set and bound.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "codec/huffman.h"
#include "codec/lz77.h"
#include "common/timer.h"
#include "compressors/interp_core.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Ablation", "SZ-family entropy stage: raw vs Huffman vs Huffman+LZ",
      env);

  TextTable t({"Dataset", "REL", "codes", "raw16 (MB)", "huff (MB)",
               "huff+lz (MB)", "huff t(s)", "lz t(s)"});
  for (const std::string& dataset : {"CESM", "NYX"}) {
    const Field& f = bench::bench_dataset(dataset, env);
    const auto range = f.value_range();
    for (double eb : {1e-2, 1e-4}) {
      InterpConfig config;
      const InterpEncoding enc =
          interp_compress(f, eb * range.span(), config);

      const double raw_mb =
          2.0 * static_cast<double>(enc.codes.size()) / 1e6;
      Bytes huff;
      const double t_huff = timed_s(
          [&] { huff = huffman_encode(enc.codes, enc.alphabet_size); });
      Bytes lz;
      const double t_lz = timed_s([&] { lz = lz_compress(huff); });

      t.add_row({dataset, fmt_error_bound(eb),
                 std::to_string(enc.codes.size()), fmt_double(raw_mb, 2),
                 fmt_double(huff.size() / 1e6, 2),
                 fmt_double(lz.size() / 1e6, 2), fmt_double(t_huff, 3),
                 fmt_double(t_lz, 3)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: Huffman does the heavy lifting (codes cluster near the\n"
      "zero-residual center); the LZ pass adds a modest extra squeeze on\n"
      "structured code streams for extra time — the design point SZ2/SZ3\n"
      "chose (Huffman + Zstd) and this library mirrors.\n");
  return 0;
}
