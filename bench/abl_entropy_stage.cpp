// Ablation — entropy-stage choices for the SZ-family code stream
// (DESIGN.md §5.1/§5.2): raw 16-bit codes vs Huffman vs Huffman + the
// deflate-class lossless backend ("Huffman + Zstd" in the papers).
// Quantifies what each stage buys per data set and bound.
//
// The dataset×bound grid (2×2 = 4 cells) runs as a sweep on the shared
// executor; rows stream as cells resolve. --verify compares the
// deterministic columns (code counts, stage sizes) bit-for-bit; the two
// host-timing columns are excluded — wall clock is run-to-run noise.
#include <cstdio>

#include "bench_util.h"
#include "codec/huffman.h"
#include "codec/lz77.h"
#include "common/timer.h"
#include "compressors/interp_core.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  bench::print_bench_header(
      "Ablation", "SZ-family entropy stage: raw vs Huffman vs Huffman+LZ",
      env);

  struct Cell {
    std::string dataset;
    double eb = 0.0;
  };
  std::vector<Cell> cells;
  for (const std::string& dataset : {"CESM", "NYX"}) {
    bench::bench_dataset(dataset, env);  // generate before the cells race
    for (double eb : {1e-2, 1e-4}) cells.push_back({dataset, eb});
  }

  struct CellOut {
    std::size_t codes = 0;
    double raw_mb = 0.0;
    double huff_mb = 0.0;
    double lz_mb = 0.0;
    double t_huff = 0.0;
    double t_lz = 0.0;
  };
  auto eval = [&](const Cell& cell, SweepCellContext&) {
    const Field& f = bench::bench_dataset(cell.dataset, env);
    InterpConfig config;
    const InterpEncoding enc =
        interp_compress(f, cell.eb * f.value_range().span(), config);

    CellOut out;
    out.codes = enc.codes.size();
    out.raw_mb = 2.0 * static_cast<double>(enc.codes.size()) / 1e6;
    Bytes huff;
    out.t_huff = timed_s(
        [&] { huff = huffman_encode(enc.codes, enc.alphabet_size); });
    Bytes lz;
    out.t_lz = timed_s([&] { lz = lz_compress(huff); });
    out.huff_mb = huff.size() / 1e6;
    out.lz_mb = lz.size() / 1e6;
    return out;
  };
  auto render = [](const Cell& cell, const CellOut& out) {
    return std::vector<std::string>{
        cell.dataset,          fmt_error_bound(cell.eb),
        std::to_string(out.codes), fmt_double(out.raw_mb, 2),
        fmt_double(out.huff_mb, 2), fmt_double(out.lz_mb, 2),
        fmt_double(out.t_huff, 3),  fmt_double(out.t_lz, 3)};
  };
  // Columns 0..5 are pure functions of the cell; 6..7 are host timings.
  const std::size_t kDeterministicCols = 6;

  bench::StreamedTable table({"Dataset", "REL", "codes", "raw16 (MB)",
                              "huff (MB)", "huff+lz (MB)", "huff t(s)",
                              "lz t(s)"});
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell&, std::size_t, const std::vector<std::string>& fragment) {
        table.add_row(fragment);
      },
      [&](const Cell&, const std::vector<std::string>& fragment) {
        return bench::detail::join_fragment(
            {fragment.begin(), fragment.begin() + kDeterministicCols});
      });
  table.finish();
  bench::print_grid_summary(summary);

  std::printf(
      "\nReading: Huffman does the heavy lifting (codes cluster near the\n"
      "zero-residual center); the LZ pass adds a modest extra squeeze on\n"
      "structured code streams for extra time — the design point SZ2/SZ3\n"
      "chose (Huffman + Zstd) and this library mirrors.\n");
  return summary.exit_code();
}
