// Extension — DVFS energy trade-off for lossy compression, after the
// paper's ref. [21] (Wilkins & Calhoun, IPDPSW'22: "Modeling power
// consumption of lossy compressed I/O for exascale HPC systems").
//
// Sweeps the CPU frequency scale for each EBLC's (really measured)
// compression kernel on NYX: runtime stretches as 1/f while active power
// scales ~ f^2.4, so with a non-trivial idle floor the energy-minimal
// frequency is interior — race-to-idle is not optimal for these kernels.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "compressors/compressor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Extension", "DVFS sweep: compression energy vs frequency (MAX 9480)",
      env);

  const CpuModel& cpu = cpu_model("9480");
  const Field& f = bench::bench_dataset("NYX", env);
  const std::vector<double> freqs = {0.5, 0.6, 0.7, 0.8, 0.9,
                                     1.0, 1.1, 1.2};

  TextTable t({"freq scale", "SZ2 (J)", "SZ3 (J)", "ZFP (J)", "QoZ (J)",
               "SZx (J)"});
  std::map<std::string, std::pair<double, double>> best;  // codec -> (f, J)
  for (double freq : freqs) {
    std::vector<std::string> row = {fmt_double(freq, 1)};
    for (const std::string& codec : eblc_names()) {
      PipelineConfig cfg;
      cfg.codec = codec;
      cfg.error_bound = eb;
      cfg.cpu = cpu.name;
      const auto rec = bench::measure_compression(f, cfg, env);
      // Nominal platform time of the compression kernel, re-run at `freq`.
      const double joules = cpu.compute_energy_j(rec.compress_s, 1, freq);
      row.push_back(fmt_double(joules, 2));
      auto it = best.find(codec);
      if (it == best.end() || joules < it->second.second)
        best[codec] = {freq, joules};
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::printf("\nenergy-minimal frequency per codec:");
  for (const std::string& codec : eblc_names())
    std::printf("  %s: %.1f", codec.c_str(), best[codec].first);
  std::printf(
      "\n\nReading: because node idle power is substantial, running slower\n"
      "than nominal wastes idle energy and running faster pays the ~f^2.4\n"
      "active-power premium; the optimum sits between — the DVFS result of\n"
      "the paper's ref. [21], reproduced on this library's power model.\n");
  return 0;
}
