// Extension — DVFS energy trade-off for lossy compression, after the
// paper's ref. [21] (Wilkins & Calhoun, IPDPSW'22: "Modeling power
// consumption of lossy compressed I/O for exascale HPC systems").
//
// Sweeps the CPU frequency scale for each EBLC's (really measured)
// compression kernel on NYX: runtime stretches as 1/f while active power
// scales ~ f^2.4, so with a non-trivial idle floor the energy-minimal
// frequency is interior — race-to-idle is not optimal for these kernels.
//
// The freq×codec grid runs on the sweep engine (run_grid_bench), so rows
// stream as cells complete and --serial/--verify/--reps/--jobs behave as
// in every other grid bench. Kernel measurements are memoized per cell
// key, which makes the --verify serial rerun exact.
#include <cstdio>
#include <map>
#include <optional>

#include "bench_util.h"
#include "compressors/compressor.h"

using namespace eblcio;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Extension", "DVFS sweep: compression energy vs frequency (MAX 9480)",
      env);

  const CpuModel& cpu = cpu_model("9480");
  bench::bench_dataset("NYX", env);  // generate before the cells race
  const std::vector<double> freqs = {0.5, 0.6, 0.7, 0.8, 0.9,
                                     1.0, 1.1, 1.2};

  struct Cell {
    double freq = 1.0;
    std::string codec;
  };
  const std::vector<std::string>& codecs = eblc_names();
  const std::size_t per_row = codecs.size();
  std::vector<Cell> cells;
  for (double freq : freqs)
    for (const std::string& codec : codecs) cells.push_back({freq, codec});

  auto eval = [&](const Cell& cell, SweepCellContext& ctx) {
    const Field& f = bench::bench_dataset("NYX", env);
    PipelineConfig cfg;
    cfg.codec = cell.codec;
    cfg.error_bound = eb;
    cfg.cpu = cpu.name;
    const auto rec = bench::measure_compression(f, cfg, env, &ctx);
    // Nominal platform time of the compression kernel, re-run at `freq`.
    return cpu.compute_energy_j(rec.compress_s, 1, cell.freq);
  };
  std::map<std::string, std::pair<double, double>> best;  // codec -> (f, J)
  auto render = [&](const Cell& cell, const double& joules) {
    // Serialized (streamed rows emit in order); idempotent across the
    // --verify rerun, so the minimum tracking stays exact.
    auto it = best.find(cell.codec);
    if (it == best.end() || joules < it->second.second)
      best[cell.codec] = {cell.freq, joules};
    return std::vector<std::string>{fmt_double(joules, 2)};
  };

  std::optional<bench::StreamedTable> table;
  std::vector<std::string> row;
  const auto summary = bench::run_grid_bench(
      std::move(cells), env, eval, render,
      [&](const Cell& cell, std::size_t index,
          const std::vector<std::string>& fragment) {
        if (index == 0) {
          std::vector<std::string> header = {"freq scale"};
          for (const std::string& codec : codecs)
            header.push_back(codec + " (J)");
          table.emplace(std::move(header));
        }
        if (index % per_row == 0) row = {fmt_double(cell.freq, 1)};
        row.insert(row.end(), fragment.begin(), fragment.end());
        if (row.size() == 1 + per_row) table->add_row(row);
      });
  if (table) table->finish();
  bench::print_grid_summary(summary);

  std::printf("\nenergy-minimal frequency per codec:");
  for (const std::string& codec : eblc_names())
    std::printf("  %s: %.1f", codec.c_str(), best[codec].first);
  std::printf(
      "\n\nReading: because node idle power is substantial, running slower\n"
      "than nominal wastes idle energy and running faster pays the ~f^2.4\n"
      "active-power premium; the optimum sits between — the DVFS result of\n"
      "the paper's ref. [21], reproduced on this library's power model.\n");
  return summary.exit_code();
}
