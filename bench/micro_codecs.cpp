// Google-benchmark micro-kernels for the codec substrate: bitstream,
// Huffman, LZ77, and single-codec compression throughput on a fixed field.
// These are the building-block numbers behind every figure bench.
#include <benchmark/benchmark.h>

#include "codec/bitstream.h"
#include "codec/huffman.h"
#include "codec/lz77.h"
#include "common/rng.h"
#include "compressors/compressor.h"
#include "data/dataset.h"

namespace {

using namespace eblcio;

void BM_BitWriterPutBits(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<std::uint64_t> values(1 << 16);
  for (auto& v : values) v = rng.next_u64();
  for (auto _ : state) {
    BitWriter bw;
    for (std::uint64_t v : values) bw.put_bits(v, width);
    benchmark::DoNotOptimize(bw.take());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()) * width /
                          8);
}
BENCHMARK(BM_BitWriterPutBits)->Arg(7)->Arg(16)->Arg(48);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::uint32_t> syms(1 << 18);
  for (auto& s : syms) {
    const double g = rng.normal() * 12.0;
    s = static_cast<std::uint32_t>(
        std::clamp(32768.0 + g, 0.0, 65536.0));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(huffman_encode(syms, 65537));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(syms.size()));
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::uint32_t> syms(1 << 18);
  for (auto& s : syms) {
    const double g = rng.normal() * 12.0;
    s = static_cast<std::uint32_t>(
        std::clamp(32768.0 + g, 0.0, 65536.0));
  }
  const Bytes blob = huffman_encode(syms, 65537);
  for (auto _ : state) benchmark::DoNotOptimize(huffman_decode(blob));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(syms.size()));
}
BENCHMARK(BM_HuffmanDecode);

Bytes lz_corpus() {
  Rng rng(3);
  Bytes data;
  for (int seg = 0; seg < 64; ++seg) {
    const std::size_t len = 1024 + rng.next_below(4096);
    if (seg % 3 == 0) {
      data.insert(data.end(), len,
                  static_cast<std::byte>(rng.next_below(256)));
    } else {
      for (std::size_t i = 0; i < len; ++i)
        data.push_back(static_cast<std::byte>(rng.next_below(16) * 17));
    }
  }
  return data;
}

void BM_LzCompress(benchmark::State& state) {
  const Bytes data = lz_corpus();
  for (auto _ : state) benchmark::DoNotOptimize(lz_compress(data));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  const Bytes blob = lz_compress(lz_corpus());
  for (auto _ : state) benchmark::DoNotOptimize(lz_decompress(blob));
}
BENCHMARK(BM_LzDecompress);

const Field& micro_field() {
  static const Field f = generate_dataset_dims("NYX", {64, 64, 64}, 7);
  return f;
}

void BM_CompressCodec(benchmark::State& state, const std::string& codec) {
  const Field& f = micro_field();
  CompressOptions opt;
  opt.error_bound = 1e-3;
  for (auto _ : state)
    benchmark::DoNotOptimize(compressor(codec).compress(f, opt));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.size_bytes()));
}
BENCHMARK_CAPTURE(BM_CompressCodec, sz2, "SZ2");
BENCHMARK_CAPTURE(BM_CompressCodec, sz3, "SZ3");
BENCHMARK_CAPTURE(BM_CompressCodec, zfp, "ZFP");
BENCHMARK_CAPTURE(BM_CompressCodec, qoz, "QoZ");
BENCHMARK_CAPTURE(BM_CompressCodec, szx, "SZx");

void BM_DecompressCodec(benchmark::State& state, const std::string& codec) {
  const Field& f = micro_field();
  CompressOptions opt;
  opt.error_bound = 1e-3;
  const Bytes blob = compressor(codec).compress(f, opt);
  for (auto _ : state)
    benchmark::DoNotOptimize(compressor(codec).decompress(blob, 1));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.size_bytes()));
}
BENCHMARK_CAPTURE(BM_DecompressCodec, sz3, "SZ3");
BENCHMARK_CAPTURE(BM_DecompressCodec, zfp, "ZFP");
BENCHMARK_CAPTURE(BM_DecompressCodec, szx, "SZx");

}  // namespace

BENCHMARK_MAIN();
