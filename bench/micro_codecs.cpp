// Micro-kernels for the codec substrate: bitstream, Huffman, LZ77, shuffle,
// quantizer, and end-to-end single-codec throughput on a fixed field.
// These are the building-block numbers behind every figure bench.
//
// Unlike the figure benches this binary is a perf harness: each kernel runs
// --reps times and the best (least-noisy) wall time is reported, as a text
// table and as machine-readable BENCH_codecs.json (see --json). CI's
// Release leg runs it and fails when huffman-decode throughput regresses
// more than 25% against bench/baselines/BENCH_codecs.json, normalized by
// the memcpy calibration row to damp machine-to-machine variance
// (scripts/check_perf_baseline.py; see src/codec/README.md for how to
// refresh the baseline).
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "codec/bitstream.h"
#include "codec/huffman.h"
#include "codec/lz77.h"
#include "codec/shuffle.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compressors/compressor.h"
#include "compressors/quantizer.h"
#include "data/dataset.h"

namespace {

using namespace eblcio;

// SZ-style quantization-code stream: 2^18 symbols, normal around the
// 65537-alphabet center (the distribution the SZ2/SZ3 entropy stage sees).
std::vector<std::uint32_t> code_stream() {
  Rng rng(2);
  std::vector<std::uint32_t> syms(1 << 18);
  for (auto& s : syms) {
    const double g = rng.normal() * 12.0;
    s = static_cast<std::uint32_t>(std::clamp(32768.0 + g, 0.0, 65536.0));
  }
  return syms;
}

// Low-entropy quantizer-code stream: geometric symbol distribution over a
// 64-symbol alphabet, so typical canonical code lengths are <= 5 bits. This
// is the regime the double-symbol Huffman LUT packs two symbols per table
// slot for; the `huffman_decode_lowent` row makes that win visible and
// gateable (normalized in-run by `huffman_decode_reference_lowent`).
std::vector<std::uint32_t> code_stream_lowent() {
  Rng rng(6);
  std::vector<std::uint32_t> syms(1 << 18);
  for (auto& s : syms) {
    std::uint32_t v = 0;
    while (v < 63 && rng.next_double() < 0.5) ++v;
    s = v;
  }
  return syms;
}

// Mixed runs/low-entropy segments: the corpus the LZ rows have always used.
Bytes lz_corpus() {
  Rng rng(3);
  Bytes data;
  for (int seg = 0; seg < 64; ++seg) {
    const std::size_t len = 1024 + rng.next_below(4096);
    if (seg % 3 == 0) {
      data.insert(data.end(), len,
                  static_cast<std::byte>(rng.next_below(256)));
    } else {
      for (std::size_t i = 0; i < len; ++i)
        data.push_back(static_cast<std::byte>(rng.next_below(16) * 17));
    }
  }
  return data;
}

const Field& micro_field() {
  static const Field f = generate_dataset_dims("NYX", {64, 64, 64}, 7);
  return f;
}

struct KernelResult {
  std::string name;
  double seconds = 0.0;   // best-of-reps wall time
  double bytes = 0.0;     // payload bytes per run (0 = not byte-oriented)
  double items = 0.0;     // symbols/elements per run (0 = n/a)
  double mbps() const { return bytes > 0 ? bytes / seconds / 1e6 : 0.0; }
  double msyms() const { return items > 0 ? items / seconds / 1e6 : 0.0; }
};

// Runs `fn` reps times, keeping the fastest wall time. The volatile sink
// defeats dead-code elimination across all kernels.
volatile std::size_t g_sink = 0;

template <typename F>
KernelResult run_kernel(const std::string& name, int reps, double bytes,
                        double items, F&& fn) {
  KernelResult r;
  r.name = name;
  r.bytes = bytes;
  r.items = items;
  r.seconds = 1e30;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    g_sink = g_sink + fn();
    r.seconds = std::min(r.seconds, t.elapsed_s());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int reps = std::max(1, args.get_int("reps", 5));
  const std::string json_path = args.get("json", "BENCH_codecs.json");

  std::printf("micro_codecs: codec-substrate kernels, best of %d reps\n",
              reps);

  const auto syms = code_stream();
  const Bytes huff_blob = huffman_encode(syms, 65537);
  const auto syms_lowent = code_stream_lowent();
  const Bytes huff_blob_lowent = huffman_encode(syms_lowent, 64);
  const Bytes corpus = lz_corpus();
  const Bytes lz_blob = lz_compress(corpus);
  const Field& field = micro_field();
  const auto field_bytes = std::as_bytes(field.as<float>().span());
  CompressOptions copt;
  copt.error_bound = 1e-3;
  Compressor& sz2 = compressor("SZ2");
  const Bytes sz2_blob = sz2.compress(field, copt);

  std::vector<KernelResult> rows;

  // Calibration: large memcpy, the machine's streaming-copy speed. The CI
  // baseline check divides kernel throughput by this row.
  {
    Bytes dst(field_bytes.size());
    rows.push_back(run_kernel(
        "memcpy", reps, static_cast<double>(field_bytes.size()), 0, [&] {
          std::memcpy(dst.data(), field_bytes.data(), field_bytes.size());
          return static_cast<std::size_t>(dst[0]);
        }));
  }

  rows.push_back(run_kernel(
      "huffman_encode", reps, 0, static_cast<double>(syms.size()),
      [&] { return huffman_encode(syms, 65537).size(); }));
  rows.push_back(run_kernel(
      "huffman_encode_reference", reps, 0, static_cast<double>(syms.size()),
      [&] { return huffman_encode_reference(syms, 65537).size(); }));
  rows.push_back(run_kernel(
      "huffman_encode_lowent", reps, 0,
      static_cast<double>(syms_lowent.size()),
      [&] { return huffman_encode(syms_lowent, 64).size(); }));
  rows.push_back(run_kernel(
      "huffman_encode_reference_lowent", reps, 0,
      static_cast<double>(syms_lowent.size()),
      [&] { return huffman_encode_reference(syms_lowent, 64).size(); }));
  rows.push_back(run_kernel(
      "huffman_decode", reps, 0, static_cast<double>(syms.size()),
      [&] { return huffman_decode(huff_blob).size(); }));
  rows.push_back(run_kernel(
      "huffman_decode_reference", reps, 0, static_cast<double>(syms.size()),
      [&] { return huffman_decode_reference(huff_blob).size(); }));

  rows.push_back(run_kernel(
      "huffman_decode_lowent", reps, 0,
      static_cast<double>(syms_lowent.size()),
      [&] { return huffman_decode(huff_blob_lowent).size(); }));
  rows.push_back(run_kernel(
      "huffman_decode_reference_lowent", reps, 0,
      static_cast<double>(syms_lowent.size()),
      [&] { return huffman_decode_reference(huff_blob_lowent).size(); }));

  rows.push_back(run_kernel(
      "lz_compress", reps, static_cast<double>(corpus.size()), 0,
      [&] { return lz_compress(corpus).size(); }));
  rows.push_back(run_kernel(
      "lz_decompress", reps, static_cast<double>(corpus.size()), 0,
      [&] { return lz_decompress(lz_blob).size(); }));

  rows.push_back(run_kernel(
      "shuffle", reps, static_cast<double>(field_bytes.size()), 0,
      [&] { return shuffle_bytes(field_bytes, 4).size(); }));
  {
    const Bytes shuffled = shuffle_bytes(field_bytes, 4);
    rows.push_back(run_kernel(
        "unshuffle", reps, static_cast<double>(field_bytes.size()), 0,
        [&] { return unshuffle_bytes(shuffled, 4).size(); }));
  }

  // Quantizer inner loop: quantize a synthetic residual stream against a
  // rolling prediction — the SZ-family per-element hot path in isolation.
  {
    Rng rng(11);
    std::vector<double> values(1 << 18);
    for (auto& v : values) v = rng.normal();
    rows.push_back(run_kernel(
        "quantize", reps, 0, static_cast<double>(values.size()), [&] {
          const LinearQuantizer quant(1e-3, 32768);
          double pred = 0.0;
          std::size_t codes = 0;
          for (double v : values) {
            double r = 0.0;
            codes += quant.quantize<float>(v, pred, &r);
            pred = r;
          }
          return codes;
        }));
  }

  const double fb = static_cast<double>(field.size_bytes());
  rows.push_back(run_kernel("sz2_compress", reps, fb, 0, [&] {
    return sz2.compress(field, copt).size();
  }));
  rows.push_back(run_kernel("sz2_decompress", reps, fb, 0, [&] {
    return sz2.decompress(sz2_blob, 1).size_bytes();
  }));
  rows.push_back(run_kernel("sz2_roundtrip", reps, fb, 0, [&] {
    const Bytes b = sz2.compress(field, copt);
    return sz2.decompress(b, 1).size_bytes();
  }));

  // Round-trip sanity while we're here: the bench must never publish
  // numbers for a broken codec path.
  if (huffman_decode(huff_blob) != syms ||
      huffman_decode_reference(huff_blob) != syms) {
    std::fprintf(stderr, "FATAL: huffman round trip mismatch\n");
    return 1;
  }
  if (huffman_encode_reference(syms, 65537) != huff_blob ||
      huffman_encode_reference(syms_lowent, 64) != huff_blob_lowent) {
    std::fprintf(stderr, "FATAL: encoder/reference blob mismatch\n");
    return 1;
  }
  if (huffman_decode(huff_blob_lowent) != syms_lowent ||
      huffman_decode_reference(huff_blob_lowent) != syms_lowent) {
    std::fprintf(stderr, "FATAL: low-entropy huffman round trip mismatch\n");
    return 1;
  }
  if (lz_decompress(lz_blob) != corpus) {
    std::fprintf(stderr, "FATAL: lz round trip mismatch\n");
    return 1;
  }
  if (unshuffle_bytes(shuffle_bytes(field_bytes, 4), 4) !=
      Bytes(field_bytes.begin(), field_bytes.end())) {
    std::fprintf(stderr, "FATAL: shuffle round trip mismatch\n");
    return 1;
  }

  bench::StreamedTable table({"kernel", "best (ms)", "MB/s", "Msym/s"});
  for (const auto& r : rows) {
    table.add_row({r.name, fmt_double(r.seconds * 1e3, 3),
                   r.bytes > 0 ? fmt_double(r.mbps(), 1) : "-",
                   r.items > 0 ? fmt_double(r.msyms(), 1) : "-"});
  }
  table.finish();

  if (!json_path.empty()) {
    bench::JsonObject kernels;
    for (const auto& r : rows) {
      bench::JsonObject k;
      k.set("seconds", r.seconds);
      if (r.bytes > 0) k.set("mbps", r.mbps());
      if (r.items > 0) k.set("msyms_per_s", r.msyms());
      kernels.set(r.name, k);
    }
    bench::JsonObject doc;
    doc.set("schema", std::uint64_t{1});
    doc.set("bench", std::string("micro_codecs"));
    doc.set("reps", static_cast<std::uint64_t>(reps));
    doc.set("kernels", kernels);
    if (!bench::write_json_file(json_path, doc)) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
