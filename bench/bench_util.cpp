#include "bench_util.h"

#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace eblcio::bench {

const Field& bench_dataset(const std::string& name, const BenchEnv& env) {
  static std::map<std::string, Field> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const std::string key =
      name + "@" + fmt_double(env.scale, 3) + "#" + std::to_string(env.seed);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const DatasetSpec& spec = dataset_spec(name);
  const double working_scale =
      std::min(1.0, env.scale / spec.default_shrink);
  Field f =
      generate_dataset_dims(name, scaled_dims(spec, working_scale), env.seed);
  f.set_name(spec.name);
  auto [pos, inserted] = cache.emplace(key, std::move(f));
  return pos->second;
}

const std::vector<double>& paper_bounds() {
  static const std::vector<double> kBounds = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};
  return kBounds;
}

const std::vector<std::string>& paper_datasets() {
  static const std::vector<std::string> kSets = {"CESM", "HACC", "NYX",
                                                 "S3D"};
  return kSets;
}

void print_bench_header(const std::string& id, const std::string& title,
                        const BenchEnv& env) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("scale=%.3g reps=%d seed=%llu\n", env.scale, env.reps,
              static_cast<unsigned long long>(env.seed));
  std::printf("================================================================\n");
}

CompressionRecord measure_compression(const Field& field,
                                      const PipelineConfig& config,
                                      const BenchEnv& env) {
  // Host kernel measurements are independent of the simulated platform, so
  // they are memoized per (field, codec, bound, threads): the three-CPU
  // sweeps of Figs. 7/10 derive all platform energies from one measurement,
  // exactly as the energy model intends.
  static std::map<std::string, CompressionRecord> cache;
  static std::mutex mu;
  const std::string key = field.name() + "|" +
                          fmt_dims(field.shape().dims_vector()) + "|" +
                          config.codec + "|" +
                          fmt_double(config.error_bound, 12) + "|" +
                          std::to_string(config.threads);
  CompressionRecord host_rec;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) {
      host_rec = it->second;
    } else {
      // Repeat per the paper's protocol on the host timings; keep the run
      // with the smallest host time (least noisy on a shared machine).
      // Quality and size are deterministic across runs.
      double best_time = 1e300;
      const int runs = std::max(1, env.reps);
      for (int i = 0; i < runs; ++i) {
        CompressionRecord rec = run_compression(field, config);
        const double t = rec.host_compress_s + rec.host_decompress_s;
        if (t < best_time) {
          best_time = t;
          host_rec = rec;
        }
      }
      cache[key] = host_rec;
    }
  }
  // Re-derive platform time/energy for the requested CPU.
  const CpuModel& cpu = cpu_model(config.cpu);
  PowercapMonitor monitor(cpu);
  Compressor& comp = compressor(config.codec);
  const int decomp_threads =
      comp.caps().parallel_decompress ? config.threads : 1;
  const auto ec = monitor.record_compute("compress", host_rec.host_compress_s,
                                         config.threads);
  const auto ed = monitor.record_compute(
      "decompress", host_rec.host_decompress_s, decomp_threads);
  host_rec.compress_s = ec.seconds;
  host_rec.compress_j = ec.joules;
  host_rec.decompress_s = ed.seconds;
  host_rec.decompress_j = ed.joules;
  return host_rec;
}

}  // namespace eblcio::bench
