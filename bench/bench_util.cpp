#include "bench_util.h"

#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <ostream>

namespace eblcio::bench {

const Field& bench_dataset(const std::string& name, const BenchEnv& env) {
  static std::map<std::string, Field> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const std::string key =
      name + "@" + fmt_double(env.scale, 3) + "#" + std::to_string(env.seed);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const DatasetSpec& spec = dataset_spec(name);
  const double working_scale =
      std::min(1.0, env.scale / spec.default_shrink);
  Field f =
      generate_dataset_dims(name, scaled_dims(spec, working_scale), env.seed);
  f.set_name(spec.name);
  auto [pos, inserted] = cache.emplace(key, std::move(f));
  return pos->second;
}

const std::vector<double>& paper_bounds() {
  static const std::vector<double> kBounds = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};
  return kBounds;
}

const std::vector<std::string>& paper_datasets() {
  static const std::vector<std::string> kSets = {"CESM", "HACC", "NYX",
                                                 "S3D"};
  return kSets;
}

void print_bench_header(const std::string& id, const std::string& title,
                        const BenchEnv& env) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("scale=%.3g reps=%d seed=%llu%s%s\n", env.scale, env.reps,
              static_cast<unsigned long long>(env.seed),
              env.serial ? " serial" : "", env.verify ? " verify" : "");
  std::printf("================================================================\n");
}

CompressionRecord measure_compression(const Field& field,
                                      const PipelineConfig& config,
                                      const BenchEnv& env,
                                      const SweepCellContext* ctx) {
  // Host kernel measurements are independent of the simulated platform, so
  // they are memoized per (field, codec, bound, threads): the three-CPU
  // sweeps of Figs. 7/10 derive all platform energies from one measurement,
  // exactly as the energy model intends. The per-key once-flag means
  // concurrent sweep cells sharing a key block on a single measurement
  // instead of racing to fill the slot with different host timings.
  struct HostEntry {
    std::once_flag once;
    CompressionRecord rec;
  };
  static std::map<std::string, HostEntry> cache;
  static std::mutex mu;
  const std::string key = field.name() + "|" +
                          fmt_dims(field.shape().dims_vector()) + "|" +
                          config.codec + "|" +
                          fmt_double(config.error_bound, 12) + "|" +
                          std::to_string(config.threads);
  HostEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu);
    entry = &cache[key];  // std::map nodes are reference-stable
  }
  std::call_once(entry->once, [&] {
    // Repeat per the paper's Sec. IV-C protocol on the host timings (the
    // run count comes from the shared protocol — the sweep's via
    // ctx.repeat when available, env.repeat_config() otherwise); keep the
    // run with the smallest host time (least noisy on a shared machine).
    // Quality and size are deterministic across runs.
    double best_time = 1e300;
    const auto sample = [&]() -> double {
      CompressionRecord rec = run_compression(field, config);
      const double t = rec.host_compress_s + rec.host_decompress_s;
      if (t < best_time) {
        best_time = t;
        entry->rec = rec;
      }
      return t;
    };
    if (env.reps <= 1) {
      (void)sample();
    } else if (ctx) {
      (void)ctx->repeat(sample);
    } else {
      (void)run_repeated(sample, env.repeat_config());
    }
  });
  CompressionRecord host_rec = entry->rec;

  // Re-derive platform time/energy for the requested CPU.
  const CpuModel& cpu = cpu_model(config.cpu);
  PowercapMonitor monitor(cpu);
  Compressor& comp = compressor(config.codec);
  const int decomp_threads =
      comp.caps().parallel_decompress ? config.threads : 1;
  const auto ec = monitor.record_compute("compress", host_rec.host_compress_s,
                                         config.threads);
  const auto ed = monitor.record_compute(
      "decompress", host_rec.host_decompress_s, decomp_threads);
  host_rec.compress_s = ec.seconds;
  host_rec.compress_j = ec.joules;
  host_rec.decompress_s = ed.seconds;
  host_rec.decompress_j = ed.joules;
  return host_rec;
}

// --- StreamedTable ---------------------------------------------------------

std::ostream& StreamedTable::default_stream() { return std::cout; }

StreamedTable::StreamedTable(std::vector<std::string> header,
                             std::ostream& os, std::size_t min_width)
    : header_(std::move(header)), os_(os) {
  width_.reserve(header_.size());
  for (const std::string& h : header_)
    width_.push_back(std::max(h.size(), min_width));
  emit_table_rule(os_, width_);
  emit_table_row(os_, header_, width_);
  emit_table_rule(os_, width_);
  os_.flush();
}

void StreamedTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  if (pending_rule_) {
    emit_table_rule(os_, width_);
    pending_rule_ = false;
  }
  emit_table_row(os_, cells, width_);
  os_.flush();
  ++rows_;
}

void StreamedTable::add_rule() { pending_rule_ = true; }

void StreamedTable::finish() {
  if (finished_) return;
  finished_ = true;
  pending_rule_ = false;
  emit_table_rule(os_, width_);
  os_.flush();
}

// --- Grid summary ----------------------------------------------------------

namespace detail {
std::string join_fragment(const std::vector<std::string>& fragment) {
  std::string joined;
  for (const std::string& cell : fragment) {
    joined += cell;
    joined += '\x1f';  // unit separator: cells can contain any text
  }
  return joined;
}
}  // namespace detail

void print_grid_summary(const GridRunSummary& s) {
  std::printf(
      "\nsweep: %zu cells, %s, wall %.3f s (summed cell time %.3f s)\n",
      s.stats.cells,
      s.serial ? "serial (in order on the calling thread)"
               : "batched on the shared executor",
      s.stats.wall_s, s.stats.cell_seconds);
  if (s.stats.failed || s.stats.skipped)
    std::printf("sweep: %zu failed, %zu skipped\n", s.stats.failed,
                s.stats.skipped);
  if (!s.verified) return;
  if (s.verify_trivial) {
    std::printf(
        "verify: ran with --serial, so the cross-check is trivial; drop\n"
        "--serial to compare the batched sweep against a serial rerun\n");
  } else if (s.verify_ok) {
    std::printf(
        "verify: streamed sweep rows bit-identical to the serial rerun "
        "(%zu cells)\n",
        s.verify_cells);
  } else {
    std::printf(
        "verify: FAILED — %zu of %zu rendered cells DIFFER between the\n"
        "batched sweep and the serial rerun\n",
        s.verify_mismatches, s.verify_cells);
  }
}


// --- JSON emission ---------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

JsonObject& JsonObject::set(const std::string& key, double value) {
  entries_.emplace_back(key, json_number(value));
  nested_.push_back(false);
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, std::uint64_t value) {
  entries_.emplace_back(key, std::to_string(value));
  nested_.push_back(false);
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + json_escape(value) + "\"");
  nested_.push_back(false);
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const JsonObject& value) {
  entries_.emplace_back(key, value.dump(0));
  nested_.push_back(true);
  return *this;
}

std::string JsonObject::dump(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent) + 2, ' ');
  std::string out = "{";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += inner_pad + "\"" + json_escape(entries_[i].first) + "\": ";
    if (nested_[i]) {
      // Re-indent the nested object's lines under this key.
      const std::string& body = entries_[i].second;
      std::string shifted;
      for (std::size_t p = 0; p < body.size(); ++p) {
        shifted += body[p];
        if (body[p] == '\n' && p + 1 < body.size()) shifted += inner_pad;
      }
      out += shifted;
    } else {
      out += entries_[i].second;
    }
  }
  out += entries_.empty() ? "}" : "\n" + pad + "}";
  return out;
}

bool write_json_file(const std::string& path, const JsonObject& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = json.dump(0) + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace eblcio::bench
