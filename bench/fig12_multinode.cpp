// Fig. 12 — Energy of compressing and writing NYX with HDF5 on Intel Xeon
// Platinum 8160 nodes across MPI scales (16..512 cores), REL bound 1e-3,
// versus writing the original data. Stacked: compression energy +
// write energy.
//
// Each rank's compression kernel is really measured once per codec; the
// rank fleets then run through simmpi, every rank advancing its simulated
// clock by its compute time and by the PFS write time under N-way
// contention — the mechanism behind the paper's 256 -> 512 core jump for
// uncompressed I/O.
//
// The (cores × variant) grid — 30 cells — executes as a sweep on the
// shared executor (core/sweep.h): independent worlds batch concurrently,
// bounded by --max-worlds, and rows stream out in deterministic order.
// Each world registers its writing fleet with the PFS writer registry; by
// default every cell owns a private PFS (results identical to --serial),
// while --shared-pfs couples the batched worlds through one file system so
// the contention model is fed the true number of simultaneously-writing
// clients across overlapping worlds.
#include <cstdio>
#include <iostream>
#include <map>
#include <mutex>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "core/sweep.h"
#include "energy/powercap_monitor.h"
#include "io/io_tool.h"
#include "parallel/simmpi.h"

using namespace eblcio;

namespace {

struct ScaleResult {
  double compress_j = 0.0;
  double write_j = 0.0;
  double wall_s = 0.0;
};

// Runs `cores` ranks; each charges `comp_s` of compute (0 for the Original
// baseline) then writes `bytes` to the PFS. The fleet holds a WriterScope
// on `pfs` for the world's lifetime; contention is the larger of the
// world's own size and the registered writer count (they are equal unless
// worlds share the PFS).
ScaleResult run_scale(int cores, double comp_s, std::size_t bytes,
                      const CpuModel& cpu, PfsSimulator& pfs) {
  PfsSimulator::WriterScope fleet(pfs, cores);
  std::mutex mu;
  double max_comp_s = 0.0, max_write_s = 0.0, wall = 0.0;

  SimMpiWorld::run(cores, [&](Communicator& comm) {
    // Small deterministic load imbalance, as on a real machine.
    const double jitter =
        1.0 + 0.05 * static_cast<double>(comm.rank() % 7) / 7.0;
    const double my_comp = comp_s * jitter;
    comm.advance_time(my_comp);
    const double t_before = comm.sim_time();
    const int clients = std::max(comm.size(), pfs.concurrent_writers());
    const double write_s = pfs.transfer_seconds(bytes, clients);
    comm.advance_time(write_s);
    comm.barrier();
    std::lock_guard<std::mutex> lock(mu);
    max_comp_s = std::max(max_comp_s, t_before);
    max_write_s = std::max(max_write_s, write_s);
    wall = std::max(wall, comm.sim_time());
  });

  // Fleet-level energy: ranks fill nodes with cpu.cores cores each; during
  // compression every occupied core draws active power on top of the
  // nodes' idle floor, and during the write the nodes draw I/O-wait power.
  const int nodes = (cores + cpu.cores - 1) / cpu.cores;
  const double fleet_idle_w = nodes * cpu.packages * cpu.idle_w;
  const double fleet_active_w =
      std::min(fleet_idle_w + cores * cpu.active_core_w,
               static_cast<double>(nodes) * cpu.packages * cpu.tdp_w);
  ScaleResult r;
  r.compress_j = fleet_active_w * max_comp_s;
  r.write_j = nodes * cpu.io_power_w() * max_write_s;
  r.wall_s = wall;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  const bool serial = args.get_bool("serial", false);
  const bool shared_pfs = args.get_bool("shared-pfs", false);
  const int max_worlds = args.get_int("max-worlds", 3);
  bench::print_bench_header(
      "Fig. 12",
      "Multi-node compress+write energy, NYX, HDF5, Platinum 8160", env);

  const CpuModel& cpu = cpu_model("8160");
  const Field& f = bench::bench_dataset("NYX", env);
  const std::vector<std::string> codecs = {"SZ2", "SZ3", "ZFP", "QoZ"};
  const std::vector<int> core_counts = {16, 32, 64, 128, 256, 512};

  // One real compression measurement per codec; per-rank compute time is
  // the platform-dilated kernel time.
  struct CodecPoint {
    double comp_s;
    std::size_t bytes;
  };
  std::map<std::string, CodecPoint> points;
  for (const std::string& codec : codecs) {
    PipelineConfig cfg;
    cfg.codec = codec;
    cfg.error_bound = eb;
    cfg.cpu = cpu.name;
    Bytes blob;
    CompressionRecord rec = run_compression(f, cfg, &blob);
    points[codec] = {rec.compress_s, blob.size()};
  }

  // The node×rank grid: 6 core counts × (4 codecs + Original) = 30 worlds,
  // batched as sweep cells. Cell order is row-major so the streamed
  // completions assemble rows deterministically.
  struct WorldCell {
    int cores = 0;
    std::string variant;  // codec name or "Original"
    double comp_s = 0.0;
    std::size_t bytes = 0;
  };
  std::vector<WorldCell> cells;
  for (int cores : core_counts) {
    for (const std::string& codec : codecs)
      cells.push_back({cores, codec, points[codec].comp_s,
                       points[codec].bytes});
    cells.push_back({cores, "Original", 0.0, f.size_bytes()});
  }

  PfsSimulator shared;  // only coupled into cells with --shared-pfs
  SweepOptions sweep;
  sweep.parallel = !serial;
  sweep.max_tasks = max_worlds;

  auto eval_cell = [&](const WorldCell& cell, SweepCellContext&) {
    PfsSimulator local;
    return run_scale(cell.cores, cell.comp_s, cell.bytes, cpu,
                     shared_pfs ? shared : local);
  };
  const auto report = sweep_grid(cells, eval_cell, sweep);
  report.rethrow_first_error();

  // --verify: re-run the identical grid in order on this thread and check
  // the batched results cell for cell (the per-world-PFS simulation is a
  // pure function of its inputs, so equality must be bit-for-bit).
  if (args.get_bool("verify", false) && (serial || shared_pfs)) {
    std::printf(
        "verify: SKIPPED — only meaningful for the batched per-world-PFS "
        "mode\n(drop --serial/--shared-pfs to cross-check batched against "
        "serial)\n");
  } else if (args.get_bool("verify", false)) {
    SweepOptions ref_opt;
    ref_opt.parallel = false;
    const auto ref = sweep_grid(cells, eval_cell, ref_opt);
    bool identical = true;
    for (std::size_t i = 0; i < cells.size(); ++i)
      identical = identical &&
                  report.cells[i].result->compress_j ==
                      ref.cells[i].result->compress_j &&
                  report.cells[i].result->write_j ==
                      ref.cells[i].result->write_j &&
                  report.cells[i].result->wall_s == ref.cells[i].result->wall_s;
    std::printf("verify: batched results %s the serial reference\n",
                identical ? "bit-identical to" : "DIFFER FROM");
  }

  TextTable t({"Cores", "SZ2 c+w (J)", "SZ3 c+w (J)", "ZFP c+w (J)",
               "QoZ c+w (J)", "Original w (J)"});
  const std::size_t row_len = codecs.size() + 1;
  for (std::size_t lo = 0; lo < report.cells.size(); lo += row_len) {
    std::vector<std::string> row = {
        std::to_string(report.cells[lo].cell.cores)};
    for (std::size_t k = 0; k < row_len; ++k) {
      const ScaleResult& r = *report.cells[lo + k].result;
      const bool original = report.cells[lo + k].cell.variant == "Original";
      row.push_back(original ? fmt_double(r.write_j, 0)
                             : fmt_double(r.compress_j, 0) + "+" +
                                   fmt_double(r.write_j, 0));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::printf(
      "\nsweep: %zu worlds, %s, wall %.3f s (summed cell time %.3f s)%s\n",
      report.stats.cells, serial ? "serial" : "batched on the executor",
      report.stats.wall_s, report.stats.cell_seconds,
      shared_pfs ? "" : "; per-world PFS (results identical to --serial)");
  if (shared_pfs)
    std::printf(
        "shared PFS: peak %d simultaneously-registered writers fed the\n"
        "contention model (worlds overlapped on the executor)\n",
        shared.peak_concurrent_writers());

  std::printf(
      "\nExpected shape (paper Fig. 12): for the compressed runs the write\n"
      "energy is a small fraction of the compression energy; total energy\n"
      "grows sub-linearly with core count; the uncompressed baseline jumps\n"
      "sharply from 256 to 512 cores as the PFS saturates, and at 512\n"
      "cores compress+write beats writing the original (~25%% saving).\n");
  return 0;
}
