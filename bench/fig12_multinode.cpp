// Fig. 12 — Energy of compressing and writing NYX with HDF5 on Intel Xeon
// Platinum 8160 nodes across MPI scales (16..512 cores), REL bound 1e-3,
// versus writing the original data. Stacked: compression energy +
// write energy.
//
// Each rank's compression kernel is really measured once per codec; the
// rank fleet then runs through simmpi, every rank advancing its simulated
// clock by its compute time and by the PFS write time under N-way
// contention — the mechanism behind the paper's 256 -> 512 core jump for
// uncompressed I/O.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "bench_util.h"
#include "compressors/compressor.h"
#include "energy/powercap_monitor.h"
#include "io/io_tool.h"
#include "parallel/simmpi.h"

using namespace eblcio;

namespace {

struct ScaleResult {
  double compress_j = 0.0;
  double write_j = 0.0;
  double wall_s = 0.0;
};

// Runs `cores` ranks; each charges `comp_s` of compute (0 for the Original
// baseline) then writes `bytes` to the shared PFS under full contention.
ScaleResult run_scale(int cores, double comp_s, std::size_t bytes,
                      const CpuModel& cpu) {
  PfsSimulator pfs;
  std::mutex mu;
  double max_comp_s = 0.0, max_write_s = 0.0, wall = 0.0;

  SimMpiWorld::run(cores, [&](Communicator& comm) {
    // Small deterministic load imbalance, as on a real machine.
    const double jitter =
        1.0 + 0.05 * static_cast<double>(comm.rank() % 7) / 7.0;
    const double my_comp = comp_s * jitter;
    comm.advance_time(my_comp);
    const double t_before = comm.sim_time();
    const double write_s = pfs.transfer_seconds(bytes, comm.size());
    comm.advance_time(write_s);
    comm.barrier();
    std::lock_guard<std::mutex> lock(mu);
    max_comp_s = std::max(max_comp_s, t_before);
    max_write_s = std::max(max_write_s, write_s);
    wall = std::max(wall, comm.sim_time());
  });

  // Fleet-level energy: ranks fill nodes with cpu.cores cores each; during
  // compression every occupied core draws active power on top of the
  // nodes' idle floor, and during the write the nodes draw I/O-wait power.
  const int nodes = (cores + cpu.cores - 1) / cpu.cores;
  const double fleet_idle_w = nodes * cpu.packages * cpu.idle_w;
  const double fleet_active_w =
      std::min(fleet_idle_w + cores * cpu.active_core_w,
               static_cast<double>(nodes) * cpu.packages * cpu.tdp_w);
  ScaleResult r;
  r.compress_j = fleet_active_w * max_comp_s;
  r.write_j = nodes * cpu.io_power_w() * max_write_s;
  r.wall_s = wall;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto env = bench::BenchEnv::from_cli(args);
  const double eb = args.get_double("eb", 1e-3);
  bench::print_bench_header(
      "Fig. 12",
      "Multi-node compress+write energy, NYX, HDF5, Platinum 8160", env);

  const CpuModel& cpu = cpu_model("8160");
  const Field& f = bench::bench_dataset("NYX", env);
  const std::vector<std::string> codecs = {"SZ2", "SZ3", "ZFP", "QoZ"};
  const std::vector<int> core_counts = {16, 32, 64, 128, 256, 512};

  // One real compression measurement per codec; per-rank compute time is
  // the platform-dilated kernel time.
  struct CodecPoint {
    double comp_s;
    std::size_t bytes;
  };
  std::map<std::string, CodecPoint> points;
  for (const std::string& codec : codecs) {
    PipelineConfig cfg;
    cfg.codec = codec;
    cfg.error_bound = eb;
    cfg.cpu = cpu.name;
    Bytes blob;
    CompressionRecord rec = run_compression(f, cfg, &blob);
    points[codec] = {rec.compress_s, blob.size()};
  }

  TextTable t({"Cores", "SZ2 c+w (J)", "SZ3 c+w (J)", "ZFP c+w (J)",
               "QoZ c+w (J)", "Original w (J)"});
  for (int cores : core_counts) {
    std::vector<std::string> row = {std::to_string(cores)};
    for (const std::string& codec : codecs) {
      const auto& p = points[codec];
      const ScaleResult r = run_scale(cores, p.comp_s, p.bytes, cpu);
      row.push_back(fmt_double(r.compress_j, 0) + "+" +
                    fmt_double(r.write_j, 0));
    }
    const ScaleResult orig = run_scale(cores, 0.0, f.size_bytes(), cpu);
    row.push_back(fmt_double(orig.write_j, 0));
    t.add_row(row);
  }
  t.print(std::cout);

  std::printf(
      "\nExpected shape (paper Fig. 12): for the compressed runs the write\n"
      "energy is a small fraction of the compression energy; total energy\n"
      "grows sub-linearly with core count; the uncompressed baseline jumps\n"
      "sharply from 256 to 512 cores as the PFS saturates, and at 512\n"
      "cores compress+write beats writing the original (~25%% saving).\n");
  return 0;
}
