#!/usr/bin/env python3
"""Fail CI when a gated bench kernel regresses against its baseline.

Compares a fresh BENCH_*.json (written by a bench binary's kernel section)
against the matching file in bench/baselines/. Raw MB/s is
machine-dependent, so each kernel's throughput is first normalized by a
same-run calibration row before comparison; the check is on the ratio of
normalized throughputs:

    current_norm / baseline_norm  >=  1 - tolerance

Paired gating kernels normalize against an in-binary reference of the same
code path: huffman_decode against huffman_decode_reference,
huffman_decode_lowent against huffman_decode_reference_lowent,
huffman_encode against huffman_encode_reference, and
huffman_encode_lowent against huffman_encode_reference_lowent
(bench_micro_codecs), zone_decode (parallel full-field zone decode)
against zone_decode_serial (bench_zone_scaling), and streamed_write
(sector-ring transport write) against streamed_write_serial (the blocking
append path, bench_transport_scaling). Both halves of a pair run
the identical payload in the same process seconds apart, which cancels
machine and noisy-neighbour variance far better than a bandwidth row can.
Because a pair shares its substrate (a regression there would slow both
and hide in the ratio), a second, looser memcpy-normalized gate
(tolerance 0.6) backstops substrate-wide slowdowns. All other kernels
normalize against `memcpy` for the informational report.

Only kernels listed via --kernel (default: huffman_decode) gate the build;
everything else is reported for the artifact log. To refresh a baseline
after an intentional perf change, either re-emit straight from the bench:

    ./build/bench_micro_codecs --reps=7 --json=bench/baselines/BENCH_codecs.json
    ./build/bench_zone_scaling --reps=7 --json=bench/baselines/BENCH_zones.json
    ./build/bench_transport_scaling --reps=7 \
        --json=bench/baselines/BENCH_transport.json

or promote a fresh run you already inspected with --update, which copies
--current over --baseline verbatim and skips gating:

    scripts/check_perf_baseline.py --current BENCH_transport.json \
        --baseline bench/baselines/BENCH_transport.json --update
"""

import argparse
import json
import shutil
import sys


def throughput(kernels: dict, name: str) -> float:
    k = kernels.get(name)
    if k is None:
        raise SystemExit(f"kernel '{name}' missing from bench output")
    v = k.get("msyms_per_s", k.get("mbps"))
    if not v or v <= 0:
        raise SystemExit(f"kernel '{name}' has no throughput value")
    return float(v)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default="bench/baselines/BENCH_codecs.json")
    ap.add_argument("--current", default="BENCH_codecs.json")
    ap.add_argument("--kernel", action="append", default=None,
                    help="gating kernel(s); default: huffman_decode, "
                         "huffman_decode_lowent, huffman_encode, "
                         "huffman_encode_lowent, sz2_roundtrip, lz_compress")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed normalized-throughput drop (default 0.25)")
    ap.add_argument("--update", action="store_true",
                    help="promote --current to --baseline and skip gating")
    args = ap.parse_args()
    gates = args.kernel or ["huffman_decode", "huffman_decode_lowent",
                            "huffman_encode", "huffman_encode_lowent",
                            "sz2_roundtrip", "lz_compress"]

    if args.update:
        with open(args.current) as f:
            json.load(f)  # refuse to promote malformed output
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    with open(args.baseline) as f:
        base = json.load(f)["kernels"]
    with open(args.current) as f:
        cur = json.load(f)["kernels"]

    normalizers = {
        "huffman_decode": "huffman_decode_reference",
        "huffman_decode_lowent": "huffman_decode_reference_lowent",
        "huffman_encode": "huffman_encode_reference",
        "huffman_encode_lowent": "huffman_encode_reference_lowent",
        "zone_decode": "zone_decode_serial",
        "streamed_write": "streamed_write_serial",
    }

    # A gated kernel absent from either file is a hard failure, not a
    # skip: a renamed or dropped bench row would otherwise disable its
    # gate silently and the check would keep "passing" forever.
    for name in gates:
        for side, kernels in (("baseline", base), ("current", cur)):
            if name not in kernels:
                raise SystemExit(
                    f"gated kernel '{name}' missing from {side} bench "
                    f"output — if the row was renamed, update the gate "
                    f"list and refresh bench/baselines/ (see module "
                    f"docstring)")
    # Backstop: the primary normalizer shares the bitstream substrate with
    # the gated kernel, so a substrate-wide slowdown cancels out of the
    # tight ratio; this looser memcpy-normalized bound still catches it.
    backstop_tolerance = 0.6

    def norm(kernels, name, cal):
        return throughput(kernels, name) / throughput(kernels, cal)

    print(f"{'kernel':<26} {'base':>10} {'current':>10} {'norm-ratio':>10}")
    failures = []
    for name in sorted(set(base) | set(cur)):
        if name == "memcpy" or name not in base or name not in cur:
            continue
        cal = normalizers.get(name, "memcpy")
        # Ungated rows whose normalizer is absent on one side (e.g. a
        # baseline predating a newly added reference row) are skipped
        # rather than crashing the report; gated kernels already
        # hard-failed above if either half of their pair is missing.
        if cal not in base or cal not in cur:
            continue
        ratio = norm(cur, name, cal) / norm(base, name, cal)
        gate = name in gates
        status = ""
        if gate:
            ok = ratio >= 1.0 - args.tolerance
            if ok and cal != "memcpy":
                loose = (norm(cur, name, "memcpy") /
                         norm(base, name, "memcpy"))
                if loose < 1.0 - backstop_tolerance:
                    ok = False
                    ratio = loose
            status = "  OK" if ok else "  REGRESSION"
            if not ok:
                failures.append((name, ratio))
        print(f"{name:<26} {throughput(base, name):>10.1f} "
              f"{throughput(cur, name):>10.1f} {ratio:>10.2f}{status}")

    if failures:
        for name, ratio in failures:
            print(f"FAIL: {name} normalized throughput at {ratio:.2f}x of "
                  f"baseline (tolerance {1 - args.tolerance:.2f}x)",
                  file=sys.stderr)
        return 1
    print("perf baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
