#!/usr/bin/env python3
"""Checks relative markdown links across the repo's documentation.

For every tracked *.md file, extracts [text](target) links and verifies
that relative targets exist on disk (anchors are stripped; http/https/
mailto links are skipped — CI stays offline). Exits nonzero listing the
broken links. Stdlib only.
"""
import os
import re
import subprocess
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "ls-files", "-co", "--exclude-standard", "--", "*.md"],
        cwd=root, check=True, capture_output=True, text=True)
    return [line for line in out.stdout.splitlines() if line]


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    broken = []
    checked = 0
    for md in tracked_markdown(root):
        md_dir = os.path.dirname(os.path.join(root, md))
        with open(os.path.join(root, md), encoding="utf-8") as fh:
            text = fh.read()
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            checked += 1
            resolved = os.path.normpath(os.path.join(md_dir, path))
            if not os.path.exists(resolved):
                broken.append(f"{md}: ({target}) -> missing {resolved}")
    if broken:
        print("broken markdown links:")
        for b in broken:
            print("  " + b)
        return 1
    print(f"markdown links OK ({checked} relative links checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
